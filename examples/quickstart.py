"""Quickstart: pre-train CPDG on a dynamic graph and fine-tune downstream.

Walks the complete workflow of the paper's Figure 1 in ~30 seconds:

1. generate a dynamic interaction graph (the Meituan-like stream),
2. split it chronologically: 60% pre-training / 40% downstream,
3. pre-train a TGN encoder with CPDG's structural-temporal contrastive
   objectives (Algorithm 1),
4. fine-tune on downstream link prediction with EIE-GRU enhancement,
5. compare against the same encoder trained from scratch.

Run:  python examples/quickstart.py
"""

from repro.core import CPDGConfig, CPDGPreTrainer
from repro.datasets import DatasetScale, meituan_stream, split_downstream
from repro.tasks import (FineTuneConfig, LinkPredictionTask,
                         build_finetuned_encoder)


def main() -> None:
    # 1. Data: a bursty user-item interaction stream (42 "days").
    stream = meituan_stream(DatasetScale(num_users=60, num_items=40,
                                         events_main=1500))
    print(f"stream: {stream.num_events} events, {stream.num_nodes} nodes, "
          f"{stream.timespan:.1f} time units")

    # 2. Chronological transfer split (paper §V-A: 6:4 on Meituan).
    pretrain_stream, rest = stream.split_fraction([0.6, 0.4])
    downstream = split_downstream(rest)
    print(f"pre-train on {pretrain_stream.num_events} events; fine-tune on "
          f"{downstream.train.num_events} train / {downstream.val.num_events} "
          f"val / {downstream.test.num_events} test")

    # 3. CPDG pre-training (paper defaults scaled to the small graph).
    config = CPDGConfig(eta=8, epsilon=8, depth=2, beta=0.5, epochs=3,
                        batch_size=150, memory_dim=32, embed_dim=32,
                        num_checkpoints=10, seed=0)
    trainer = CPDGPreTrainer.from_backbone("tgn", stream.num_nodes, config)
    result = trainer.pretrain(pretrain_stream, verbose=True)
    l_eta, l_eps, l_tlp = result.final_losses
    print(f"pre-trained: L_eta={l_eta:.4f} L_eps={l_eps:.4f} "
          f"L_tlp={l_tlp:.4f}, {len(result.checkpoints)} memory checkpoints")

    # 4. Fine-tune with evolution-information-enhanced (EIE-GRU) strategy.
    finetune = FineTuneConfig(epochs=4, batch_size=150, patience=2, seed=0)
    cpdg_strategy = build_finetuned_encoder("tgn", stream.num_nodes, config,
                                            result, "eie-gru", finetune)
    cpdg_metrics = LinkPredictionTask(cpdg_strategy, downstream,
                                      finetune).run(verbose=True)

    # 5. Control arm: no pre-training.
    scratch = build_finetuned_encoder("tgn", stream.num_nodes, config, None,
                                      "none", finetune)
    scratch_metrics = LinkPredictionTask(scratch, downstream, finetune).run()

    print("\n=== downstream dynamic link prediction ===")
    print(f"  from scratch : AUC={scratch_metrics.auc:.4f} "
          f"AP={scratch_metrics.ap:.4f}")
    print(f"  CPDG+EIE-GRU : AUC={cpdg_metrics.auc:.4f} "
          f"AP={cpdg_metrics.ap:.4f}")
    gain = (cpdg_metrics.auc - scratch_metrics.auc) / scratch_metrics.auc
    print(f"  AUC gain     : {gain:+.2%}")


if __name__ == "__main__":
    main()
