"""Quickstart: the unified CPDG pipeline in one screen.

Walks the complete workflow of the paper's Figure 1 in ~30 seconds using
the :mod:`repro.api` facade:

1. describe the whole run — dataset, backbone, CPDG hyper-parameters,
   fine-tuning knobs — in one serialisable :class:`RunConfig`,
2. pre-train a TGN encoder with CPDG's structural-temporal contrastive
   objectives (Algorithm 1) via ``Pipeline.pretrain()``,
3. persist the pre-training artifact and resume from the file — the same
   two-process flow as ``python -m repro pretrain`` / ``evaluate``,
4. fine-tune on downstream link prediction with EIE-GRU enhancement,
5. compare against the same encoder trained from scratch.

Run:  python examples/quickstart.py
"""

import os
import tempfile

from repro.api import DataConfig, Pipeline, RunConfig
from repro.core import CPDGConfig
from repro.tasks import FineTuneConfig


def main() -> None:
    # 1. One config for the whole run.  ``RunConfig.from_json`` /
    #    ``with_overrides({"pretrain.beta": ...})`` read the same structure
    #    the CLI's --config/--set flags use.
    config = RunConfig(
        backbone="tgn",
        task="link_prediction",
        strategy="eie-gru",
        # A bursty user-item stream (42 "days"), split 6:4 into
        # pre-training and downstream history (paper §V-A on Meituan).
        data=DataConfig(dataset="meituan", num_users=60, num_items=40,
                        events_main=1500, pretrain_fraction=0.6),
        pretrain=CPDGConfig(eta=8, epsilon=8, depth=2, beta=0.5, epochs=3,
                            batch_size=150, memory_dim=32, embed_dim=32,
                            num_checkpoints=10, seed=0),
        finetune=FineTuneConfig(epochs=4, batch_size=150, patience=2, seed=0),
    )

    # 2. CPDG pre-training (Algorithm 1); streams resolve from the config.
    pipeline = Pipeline(config).pretrain(verbose=True)
    l_eta, l_eps, l_tlp = pipeline.artifact.result.final_losses
    print(f"pre-trained: L_eta={l_eta:.4f} L_eps={l_eps:.4f} "
          f"L_tlp={l_tlp:.4f}, "
          f"{len(pipeline.artifact.result.checkpoints)} memory checkpoints")

    # 3. Pre-train once, transfer everywhere: the artifact round-trips
    #    through a single .npz file, config included.
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "quickstart_artifact.npz")
        pipeline.save(path)
        print(f"artifact saved ({os.path.getsize(path) / 1024:.0f} KiB); "
              "resuming fine-tuning from the file")

        # 4. Fine-tune with evolution-information-enhanced (EIE-GRU)
        #    strategy, exactly what `python -m repro evaluate` does.
        cpdg_metrics = (Pipeline.from_artifact(path)
                        .finetune(verbose=True)
                        .evaluate())

    # 5. Control arm: no pre-training (strategy "none" needs no artifact).
    scratch_metrics = Pipeline(config).finetune(strategy="none").evaluate()

    print("\n=== downstream dynamic link prediction ===")
    print(f"  from scratch : AUC={scratch_metrics.auc:.4f} "
          f"AP={scratch_metrics.ap:.4f}")
    print(f"  CPDG+EIE-GRU : AUC={cpdg_metrics.auc:.4f} "
          f"AP={cpdg_metrics.ap:.4f}")
    gain = (cpdg_metrics.auc - scratch_metrics.auc) / scratch_metrics.auc
    print(f"  AUC gain     : {gain:+.2%}")


if __name__ == "__main__":
    main()
