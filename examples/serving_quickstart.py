"""Serving quickstart: pretrain -> finetune -> export -> serve.

The runtime half of the paper's *pre-train once, reuse everywhere* story:

1. one fluent :class:`~repro.api.Pipeline` chain pre-trains a TGN
   encoder with CPDG, fine-tunes a link-prediction head and exports a
   format-v2 artifact (encoder + memory + EIE checkpoints + the
   fine-tuned head) in a single expression,
2. :class:`~repro.serve.EmbeddingService` turns that file into a live
   query engine: ``embed`` / ``score_links`` / ``top_k``,
3. ``ingest`` streams new events in — the dynamic adjacency grows
   append-only and the memory advances exactly as an offline replay
   would — and the same queries reflect them immediately,
4. the stdlib HTTP frontend serves the same API over a socket
   (``python -m repro serve --artifact serving.npz``).

Run:  python examples/serving_quickstart.py
"""

import os
import tempfile

import numpy as np

from repro.api import DataConfig, Pipeline, RunConfig
from repro.core import CPDGConfig
from repro.serve import EmbeddingService, HttpClient, start_http_server
from repro.tasks import FineTuneConfig


def main() -> None:
    config = RunConfig(
        backbone="tgn",
        task="link_prediction",
        strategy="eie-gru",
        data=DataConfig(dataset="meituan", num_users=60, num_items=40,
                        events_main=1200, pretrain_fraction=0.6),
        pretrain=CPDGConfig(eta=6, epsilon=6, depth=2, epochs=2,
                            batch_size=150, memory_dim=32, embed_dim=32,
                            num_checkpoints=8, seed=0),
        finetune=FineTuneConfig(epochs=3, batch_size=150, patience=2, seed=0),
    )

    with tempfile.TemporaryDirectory() as tmp:
        artifact_path = os.path.join(tmp, "serving.npz")

        # 1. Train once, export once: the artifact carries the fine-tuned
        #    head, so serving can score links the way evaluation does.
        (Pipeline(config)
         .pretrain(verbose=True)
         .finetune()
         .export_for_serving(artifact_path))
        print(f"exported {os.path.getsize(artifact_path) / 1024:.0f} KiB "
              f"artifact -> {artifact_path}")

        # 2. One call turns the file into a query engine.  The history
        #    stream is resolved from the artifact's embedded data config.
        service = EmbeddingService.from_artifact(artifact_path)
        info = service.stats()
        print(f"serving {info['backbone']} over {info['num_nodes']} nodes, "
              f"{info['graph']['num_events']} events, "
              f"scorer={info['scorer']}")

        now = 10_000.0
        users, items = [0, 1, 2], [70, 75, 80]
        z = service.embed(users, now)
        print(f"embed({users}) -> {z.shape} at t={now:.0f}")
        scores = service.score_links(users, items, now)
        print("link scores:", np.round(scores, 3).tolist())
        top_ids, top_scores = service.top_k(0, now, k=5)
        print(f"top-5 destinations for user 0: {top_ids.tolist()} "
              f"(scores {np.round(top_scores, 3).tolist()})")

        # 3. Live ingestion: new interactions shift the ranking without
        #    retraining — user 0 repeatedly interacting with one item.
        #    (The meituan stream carries edge features, so ingested
        #    events must too; `ingest_edge_dim` in stats() tells the
        #    width a client has to send.)
        hot_item = int(top_ids[-1])
        edge_dim = info["ingest_edge_dim"]
        service.ingest(src=[0, 0, 0], dst=[hot_item] * 3,
                       timestamps=[now + 1.0, now + 2.0, now + 3.0],
                       edge_feats=np.zeros((3, edge_dim)))
        new_ids, _ = service.top_k(0, now + 10.0, k=5)
        print(f"after ingesting 3 events on item {hot_item}: "
              f"top-5 -> {new_ids.tolist()}")
        stats = service.stats()
        print(f"graph now {stats['graph']['num_events']} events "
              f"({stats['graph']['delta_events']} in the delta), cache "
              f"hit rate {stats['planner']['cache_hit_rate']:.2f}")

        # 4. The same API over HTTP (what `python -m repro serve` runs).
        server, _ = start_http_server(service)
        client = HttpClient(f"http://127.0.0.1:{server.server_address[1]}")
        reply = client.topk(0, now + 10.0, 3)
        print(f"HTTP /topk -> {reply['nodes']}")
        server.shutdown()


if __name__ == "__main__":
    main()
