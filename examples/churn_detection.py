"""Dynamic churn / dropout detection — node classification downstream.

The MOOC-style scenario of paper Table IX: students interact with course
units; some accumulate "strain" from hard units and drop out.  The task is
to flag at-risk students *at interaction time* from their dynamic
embedding.  We pre-train CPDG on unlabeled early history (labels are never
used during pre-training) and fine-tune a classifier on the later,
labelled portion, comparing the three DGNN backbones with and without
CPDG pre-training.

Run:  python examples/churn_detection.py
"""

from repro.core import CPDGConfig, CPDGPreTrainer
from repro.datasets import (DatasetScale, labeled_stream,
                            node_classification_split)
from repro.tasks import (FineTuneConfig, NodeClassificationTask,
                         build_finetuned_encoder)


def main() -> None:
    stream = labeled_stream("mooc", DatasetScale(num_users=70, num_items=40,
                                                 events_labeled=1800))
    print(f"stream: {stream.num_events} events, "
          f"positive rate {stream.metadata['positive_rate']:.1%}, "
          f"{stream.metadata['flipped_users']} students drop out")

    # Paper §V-A: 6:2:1:1 chronological split.
    pretrain_stream, downstream = node_classification_split(stream)
    print(f"pre-train {pretrain_stream.num_events} / "
          f"train {downstream.train.num_events} / "
          f"val {downstream.val.num_events} / "
          f"test {downstream.test.num_events}\n")

    config = CPDGConfig(eta=8, epsilon=8, depth=2, epochs=3, batch_size=150,
                        memory_dim=32, embed_dim=32, num_checkpoints=10,
                        seed=0)
    finetune = FineTuneConfig(epochs=5, batch_size=150, patience=3, seed=0)

    print(f"{'backbone':8s} {'scratch AUC':>12s} {'CPDG AUC':>12s} {'gain':>8s}")
    for backbone in ("jodie", "dyrep", "tgn"):
        scratch = build_finetuned_encoder(backbone, stream.num_nodes, config,
                                          None, "none", finetune)
        base = NodeClassificationTask(scratch, downstream, finetune).run()

        trainer = CPDGPreTrainer.from_backbone(backbone, stream.num_nodes,
                                               config)
        pretrained = trainer.pretrain(pretrain_stream)
        enhanced = build_finetuned_encoder(backbone, stream.num_nodes, config,
                                           pretrained, "eie-gru", finetune)
        cpdg = NodeClassificationTask(enhanced, downstream, finetune).run()

        gain = (cpdg.auc - base.auc) / base.auc
        print(f"{backbone:8s} {base.auc:12.4f} {cpdg.auc:12.4f} {gain:+8.2%}")


if __name__ == "__main__":
    main()
