"""Dynamic churn / dropout detection — node classification downstream.

The MOOC-style scenario of paper Table IX: students interact with course
units; some accumulate "strain" from hard units and drop out.  The task is
to flag at-risk students *at interaction time* from their dynamic
embedding.  We pre-train CPDG on unlabeled early history (labels are never
used during pre-training) and fine-tune a classifier on the later,
labelled portion, comparing the three DGNN backbones with and without
CPDG pre-training — each arm a two-line :class:`repro.api.Pipeline` run.

Run:  python examples/churn_detection.py
"""

from dataclasses import replace

from repro.api import DataConfig, Pipeline, RunConfig, resolve_data
from repro.core import CPDGConfig
from repro.tasks import FineTuneConfig


def main() -> None:
    config = RunConfig(
        task="node_classification",
        strategy="eie-gru",
        # Paper §V-A: 6:2:1:1 chronological split = pre-train on the first
        # 60%, then 2:1:1 (0.5/0.25/0.25) over the labelled remainder.
        data=DataConfig(dataset="mooc", num_users=70, num_items=40,
                        events_labeled=1800, pretrain_fraction=0.6,
                        train_fraction=0.5, val_fraction=0.25,
                        test_fraction=0.25),
        pretrain=CPDGConfig(eta=8, epsilon=8, depth=2, epochs=3,
                            batch_size=150, memory_dim=32, embed_dim=32,
                            num_checkpoints=10, seed=0),
        finetune=FineTuneConfig(epochs=5, batch_size=150, patience=3, seed=0),
    )

    # Resolve the dataset once; every arm below reuses the same streams.
    data = resolve_data(config.data)
    stream_meta = data.pretrain.metadata
    print(f"pre-train {data.pretrain.num_events} / "
          f"train {data.downstream.train.num_events} / "
          f"val {data.downstream.val.num_events} / "
          f"test {data.downstream.test.num_events} events "
          f"({stream_meta['flipped_users']} students drop out)\n")

    print(f"{'backbone':8s} {'scratch AUC':>12s} {'CPDG AUC':>12s} {'gain':>8s}")
    for backbone in ("jodie", "dyrep", "tgn"):
        cfg = replace(config, backbone=backbone)
        base = (Pipeline(cfg)
                .finetune(split=data.downstream, strategy="none",
                          num_nodes=data.num_nodes)
                .evaluate())
        cpdg = (Pipeline(cfg)
                .pretrain(data.pretrain)
                .finetune(split=data.downstream)
                .evaluate())
        gain = (cpdg.auc - base.auc) / base.auc
        print(f"{backbone:8s} {base.auc:12.4f} {cpdg.auc:12.4f} {gain:+8.2%}")


if __name__ == "__main__":
    main()
