"""Anatomy of the structural-temporal sampler (paper §IV-A, Figures 3-4).

Builds a small interaction stream around one "root" user and prints what
each sampling strategy actually extracts:

* the chronological / reverse-chronological probabilities (Eq. 6-8),
* the η-BFS positive and negative temporal subgraphs,
* the ε-DFS structural subgraph,
* the effect of the temperature τ on how sharply recency is favoured.

Run:  python examples/sampler_anatomy.py
"""

import numpy as np

from repro.core import (EpsilonDFSSampler, EtaBFSSampler,
                        chronological_probability,
                        reverse_chronological_probability)
from repro.graph import EventStream, NeighborFinder


def bar(p: float, width: int = 30) -> str:
    return "#" * int(round(p * width))


def main() -> None:
    # Root user 0 interacts with items 10..15 at increasing times; items
    # have their own second-ring history.
    src = [0, 0, 0, 0, 0, 0, 1, 2, 3, 1, 2]
    dst = [10, 11, 12, 13, 14, 15, 10, 11, 12, 13, 14]
    ts = [1.0, 2.0, 4.0, 7.0, 8.0, 9.0, 0.5, 1.5, 3.0, 5.0, 6.0]
    stream = EventStream(src=src, dst=dst, timestamps=ts, num_nodes=16)
    finder = NeighborFinder(stream)
    now = 10.0

    neighbors, times, _ = finder.before(0, now)
    print(f"root node 0 at t={now}: neighbours {neighbors.tolist()} "
          f"at times {times.tolist()}\n")

    for tau in (0.1, 0.5, 2.0):
        chrono = chronological_probability(times, now, tau=tau)
        reverse = reverse_chronological_probability(times, now, tau=tau)
        print(f"tau={tau}")
        print(f"  {'item':>5s} {'t_u':>5s} {'chrono':>8s} {'reverse':>8s}")
        for item, t_u, p_c, p_r in zip(neighbors, times, chrono, reverse):
            print(f"  {item:5d} {t_u:5.1f} {p_c:8.4f} {p_r:8.4f}  "
                  f"{bar(p_c)}")
        print()

    print("eta-BFS positive (chronological) vs negative (reverse), eta=3 k=2:")
    positive = EtaBFSSampler(finder, eta=3, depth=2,
                             probability="chronological", tau=0.2, seed=1)
    negative = EtaBFSSampler(finder, eta=3, depth=2,
                             probability="reverse", tau=0.2, seed=1)
    for trial in range(3):
        tp = positive.sample(0, now)
        tn = negative.sample(0, now)
        print(f"  trial {trial}: TP={sorted(tp.tolist())} "
              f"TN={sorted(tn.tolist())}")

    print("\nepsilon-DFS structural subgraph, epsilon=2 k=2 (deterministic):")
    dfs = EpsilonDFSSampler(finder, epsilon=2, depth=2)
    print(f"  SP(node 0) = {sorted(dfs.sample(0, now).tolist())}")
    print(f"  SP(node 1) = {sorted(dfs.sample(1, now).tolist())}")
    print("\nNote how epsilon-DFS keeps only the most recently interacted "
          "neighbours\n(items 14, 15 for the root) while eta-BFS negative "
          "sampling reaches back\nto the oldest events — exactly the "
          "positive/negative temporal views of Eq. 11.")


if __name__ == "__main__":
    main()
