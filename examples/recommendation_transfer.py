"""Cross-field recommendation transfer — the paper's motivating scenario.

An e-commerce platform (the Amazon Review analogue) has a mature category
("arts") with abundant history and launches recommendations in two newer
categories ("beauty", "luxury").  Retraining a DGNN per category is
impractical (paper §I), so we pre-train ONCE on the mature category's
history and transfer under the hardest setting — time+field — comparing
all four fine-tuning strategies of paper Table XI.  The single
:class:`repro.api.PretrainArtifact` is shared across every (category,
strategy) arm, exactly the pre-train-once / fine-tune-everywhere flow of
the ``pretrain`` / ``evaluate`` CLI.

Run:  python examples/recommendation_transfer.py
"""

from dataclasses import replace

from repro.api import DataConfig, Pipeline, RunConfig, resolve_data
from repro.core import CPDGConfig
from repro.tasks import FineTuneConfig

STRATEGIES = ("full", "eie-mean", "eie-attn", "eie-gru")


def main() -> None:
    config = RunConfig(
        backbone="jodie",
        task="link_prediction",
        # time+field: pre-train on the source field's ("arts") early
        # history, fine-tune on each target's later history (paper §V-C).
        data=DataConfig(dataset="amazon:beauty", transfer="time+field",
                        source_field="arts", num_users=70, num_items=40,
                        events_main=1400, events_source=1800),
        pretrain=CPDGConfig(eta=8, epsilon=8, depth=2, epochs=3,
                            batch_size=150, memory_dim=32, embed_dim=32,
                            num_checkpoints=10, seed=0),
        finetune=FineTuneConfig(epochs=4, batch_size=150, patience=2, seed=0),
    )

    # Pre-train ONCE on the mature category's early history.
    pipeline = Pipeline(config).pretrain(verbose=True)
    artifact = pipeline.artifact
    print(f"pre-trained on '{artifact.dataset_name}' "
          f"({artifact.num_nodes} nodes, fingerprint "
          f"{artifact.dataset_fingerprint})\n")

    # Transfer to each new category with every fine-tuning strategy
    # (each target's streams resolved once, shared across arms).
    for target in ("beauty", "luxury"):
        cfg = replace(config,
                      data=replace(config.data, dataset=f"amazon:{target}"))
        data = resolve_data(cfg.data)
        print(f"=== target category: {target} "
              f"({data.downstream.train.num_events} fine-tune events) ===")
        base = (Pipeline(cfg)
                .finetune(split=data.downstream, strategy="none",
                          num_nodes=data.num_nodes)
                .evaluate())
        print(f"  no pre-train : AUC={base.auc:.4f} AP={base.ap:.4f}")
        for strategy in STRATEGIES:
            metrics = (Pipeline(cfg, artifact=artifact)
                       .finetune(split=data.downstream, strategy=strategy)
                       .evaluate())
            print(f"  {strategy:12s} : AUC={metrics.auc:.4f} "
                  f"AP={metrics.ap:.4f} "
                  f"({(metrics.auc - base.auc) / base.auc:+.2%} AUC)")
        print()


if __name__ == "__main__":
    main()
