"""Cross-field recommendation transfer — the paper's motivating scenario.

An e-commerce platform (the Amazon Review analogue) has a mature category
("arts") with abundant history and launches recommendations in two newer
categories ("beauty", "luxury").  Retraining a DGNN per category is
impractical (paper §I), so we pre-train once on the mature category's
history and transfer under the hardest setting — time+field — comparing
all four fine-tuning strategies of paper Table XI.

Run:  python examples/recommendation_transfer.py
"""

from repro.core import CPDGConfig, CPDGPreTrainer
from repro.datasets import (DEFAULT_SPLIT_TIME, DatasetScale, amazon_universe,
                            make_transfer_split)
from repro.tasks import (FineTuneConfig, LinkPredictionTask,
                         build_finetuned_encoder)

STRATEGIES = ("full", "eie-mean", "eie-attn", "eie-gru")


def main() -> None:
    universe = amazon_universe(DatasetScale(num_users=70, num_items=40,
                                            events_main=1400,
                                            events_source=1800))
    print(f"universe: {universe.num_nodes} nodes, fields "
          f"{universe.field_names()} (users shared across fields)")

    config = CPDGConfig(eta=8, epsilon=8, depth=2, epochs=3, batch_size=150,
                        memory_dim=32, embed_dim=32, num_checkpoints=10,
                        seed=0)
    finetune = FineTuneConfig(epochs=4, batch_size=150, patience=2, seed=0)

    # Pre-train ONCE on the mature category's early history.
    source_split = make_transfer_split("time+field",
                                       universe.stream("beauty"),
                                       universe.stream("arts"),
                                       DEFAULT_SPLIT_TIME)
    trainer = CPDGPreTrainer.from_backbone("jodie", universe.num_nodes, config)
    pretrained = trainer.pretrain(source_split.pretrain, verbose=True)
    print(f"pre-trained on 'arts' history "
          f"({source_split.pretrain.num_events} events)\n")

    # Transfer to each new category with every fine-tuning strategy.
    for field in ("beauty", "luxury"):
        split = make_transfer_split("time+field", universe.stream(field),
                                    universe.stream("arts"),
                                    DEFAULT_SPLIT_TIME)
        print(f"=== target category: {field} "
              f"({split.downstream.train.num_events} fine-tune events) ===")
        baseline = build_finetuned_encoder("jodie", universe.num_nodes,
                                           config, None, "none", finetune)
        base = LinkPredictionTask(baseline, split.downstream, finetune).run()
        print(f"  no pre-train : AUC={base.auc:.4f} AP={base.ap:.4f}")
        for strategy in STRATEGIES:
            built = build_finetuned_encoder("jodie", universe.num_nodes,
                                            config, pretrained, strategy,
                                            finetune)
            metrics = LinkPredictionTask(built, split.downstream,
                                         finetune).run()
            print(f"  {strategy:12s} : AUC={metrics.auc:.4f} "
                  f"AP={metrics.ap:.4f} "
                  f"({(metrics.auc - base.auc) / base.auc:+.2%} AUC)")
        print()


if __name__ == "__main__":
    main()
