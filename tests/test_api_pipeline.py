"""Integration tests for PretrainArtifact persistence and the Pipeline
facade (repro.api)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (ARTIFACT_FORMAT_VERSION, ArtifactError, ConfigError,
                       DataConfig, Pipeline, PretrainArtifact, RunConfig,
                       stream_fingerprint)
from repro.datasets import split_downstream
from repro.nn.serialization import save_arrays

TINY = dict(eta=3, epsilon=3, depth=1, epochs=1, batch_size=64,
            memory_dim=8, embed_dim=8, time_dim=4, n_neighbors=3,
            num_checkpoints=3, seed=0)


def tiny_config(**kwargs) -> RunConfig:
    payload = {
        "pretrain": dict(TINY),
        "finetune": {"epochs": 1, "batch_size": 64, "patience": 1,
                     "eie_out_dim": 4},
    }
    payload.update(kwargs)
    return RunConfig.from_dict(payload)


@pytest.fixture
def tiny_split(tiny_stream):
    pretrain, rest = tiny_stream.split_fraction([0.6, 0.4])
    return pretrain, split_downstream(rest)


class TestArtifact:
    def test_save_load_preserves_payload(self, tiny_stream, tmp_path):
        pipeline = Pipeline(tiny_config()).pretrain(tiny_stream)
        artifact = pipeline.artifact
        path = str(tmp_path / "artifact.npz")
        pipeline.save(path)
        loaded = PretrainArtifact.load(path)

        assert loaded.run_config == artifact.run_config
        assert loaded.num_nodes == artifact.num_nodes
        assert loaded.delta_scale == artifact.delta_scale
        assert loaded.dataset_fingerprint == stream_fingerprint(tiny_stream)
        assert loaded.format_version == ARTIFACT_FORMAT_VERSION
        np.testing.assert_array_equal(loaded.result.memory_state,
                                      artifact.result.memory_state)
        np.testing.assert_array_equal(loaded.result.last_update,
                                      artifact.result.last_update)
        assert set(loaded.result.encoder_state) == set(
            artifact.result.encoder_state)
        for key, array in artifact.result.encoder_state.items():
            np.testing.assert_array_equal(loaded.result.encoder_state[key],
                                          array, err_msg=key)
        assert len(loaded.result.checkpoints) == len(
            artifact.result.checkpoints)
        for left, right in zip(loaded.result.checkpoints.as_list(),
                               artifact.result.checkpoints.as_list()):
            np.testing.assert_array_equal(left, right)
        assert loaded.result.loss_history == [
            tuple(row) for row in artifact.result.loss_history]

    def test_loaded_artifact_finetunes_identically(self, tiny_stream,
                                                   tiny_split, tmp_path):
        """The acceptance-criterion equivalence, in-process."""
        pretrain, downstream = tiny_split
        config = tiny_config()
        pipeline = Pipeline(config).pretrain(pretrain)
        path = str(tmp_path / "artifact.npz")
        pipeline.save(path)

        in_memory = pipeline.finetune(split=downstream).evaluate()
        from_disk = (Pipeline.from_artifact(path)
                     .finetune(split=downstream)
                     .evaluate())
        assert from_disk.auc == in_memory.auc
        assert from_disk.ap == in_memory.ap
        assert from_disk.num_events == in_memory.num_events

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(ArtifactError):
            PretrainArtifact.load(str(tmp_path / "nope.npz"))

    def test_load_rejects_foreign_npz(self, tmp_path):
        path = str(tmp_path / "foreign.npz")
        save_arrays(path, {"weights": np.zeros(3)})
        with pytest.raises(ArtifactError, match="not a CPDG"):
            PretrainArtifact.load(path)

    def test_load_rejects_future_format_version(self, tiny_stream, tmp_path):
        pipeline = Pipeline(tiny_config()).pretrain(tiny_stream)
        pipeline.artifact.format_version = ARTIFACT_FORMAT_VERSION + 1
        path = str(tmp_path / "future.npz")
        pipeline.save(path)
        with pytest.raises(ArtifactError, match="format version"):
            PretrainArtifact.load(path)

    def test_describe_summarises(self, tiny_stream):
        artifact = Pipeline(tiny_config()).pretrain(tiny_stream).artifact
        info = artifact.describe()
        assert info["backbone"] == "tgn"
        assert info["checkpoints"] == 3
        assert set(info["final_losses"]) == {"L_eta", "L_eps", "L_tlp"}


class TestPipeline:
    def test_fluent_chain_with_explicit_streams(self, tiny_split):
        pretrain, downstream = tiny_split
        metrics = (Pipeline(tiny_config(strategy="eie-attn"))
                   .pretrain(pretrain)
                   .finetune(split=downstream)
                   .evaluate())
        assert 0.0 <= metrics.auc <= 1.0

    def test_config_resolved_run(self):
        config = tiny_config(
            data={"dataset": "meituan", "num_users": 20, "num_items": 15,
                  "events_main": 200})
        metrics = Pipeline(config).run()
        assert np.isnan(metrics.auc) or 0.0 <= metrics.auc <= 1.0

    def test_strategy_none_needs_no_artifact(self, tiny_split):
        _, downstream = tiny_split
        metrics = (Pipeline(tiny_config())
                   .finetune(split=downstream, strategy="none")
                   .evaluate())
        assert 0.0 <= metrics.auc <= 1.0

    def test_finetune_without_artifact_raises(self, tiny_split):
        _, downstream = tiny_split
        with pytest.raises(ConfigError, match="artifact"):
            Pipeline(tiny_config()).finetune(split=downstream)

    def test_save_before_pretrain_raises(self, tmp_path):
        with pytest.raises(ConfigError, match="pretrain"):
            Pipeline(tiny_config()).save(str(tmp_path / "a.npz"))

    def test_backbone_mismatch_rejected(self, tiny_stream, tiny_split):
        _, downstream = tiny_split
        artifact = Pipeline(tiny_config()).pretrain(tiny_stream).artifact
        pipeline = Pipeline(tiny_config(backbone="jodie"), artifact=artifact)
        with pytest.raises(ConfigError, match="backbone"):
            pipeline.finetune(split=downstream)

    def test_encoder_shape_mismatch_rejected(self, tiny_stream, tiny_split):
        _, downstream = tiny_split
        artifact = Pipeline(tiny_config()).pretrain(tiny_stream).artifact
        wider = tiny_config()
        wider.pretrain = wider.pretrain.with_overrides(memory_dim=16)
        with pytest.raises(ConfigError, match="memory_dim"):
            Pipeline(wider, artifact=artifact).finetune(split=downstream)

    def test_inductive_node_classification_rejected(self, tiny_labeled_stream):
        pretrain, rest = tiny_labeled_stream.split_fraction([0.6, 0.4])
        downstream = split_downstream(rest)
        config = tiny_config(task="node_classification", inductive=True)
        pipeline = (Pipeline(config)
                    .pretrain(pretrain)
                    .finetune(split=downstream))
        with pytest.raises(ConfigError, match="inductive"):
            pipeline.evaluate()

    def test_config_resolved_dataset_name_is_clean(self):
        config = tiny_config(
            data={"dataset": "meituan", "num_users": 20, "num_items": 15,
                  "events_main": 200})
        artifact = Pipeline(config).pretrain().artifact
        assert artifact.dataset_name == "meituan"

    def test_node_capacity_mismatch_rejected(self, tiny_stream, tiny_split):
        _, downstream = tiny_split
        artifact = Pipeline(tiny_config()).pretrain(tiny_stream).artifact
        pipeline = Pipeline(tiny_config(), artifact=artifact)
        with pytest.raises(ConfigError, match="nodes"):
            pipeline.finetune(split=downstream,
                              num_nodes=artifact.num_nodes + 10)

    def test_per_call_overrides_do_not_mutate_config(self, tiny_split):
        pretrain, downstream = tiny_split
        config = tiny_config()
        pipeline = Pipeline(config).pretrain(pretrain)
        pipeline.finetune(split=downstream, strategy="full",
                          task="link_prediction")
        assert config.strategy == "eie-gru"

    def test_node_classification_task(self, tiny_labeled_stream):
        pretrain, rest = tiny_labeled_stream.split_fraction([0.6, 0.4])
        downstream = split_downstream(rest)
        config = tiny_config(task="node_classification", backbone="jodie")
        metrics = (Pipeline(config)
                   .pretrain(pretrain)
                   .finetune(split=downstream)
                   .evaluate())
        assert np.isnan(metrics.auc) or 0.0 <= metrics.auc <= 1.0

    def test_history_populated_by_finetune(self, tiny_split):
        pretrain, downstream = tiny_split
        pipeline = (Pipeline(tiny_config())
                    .pretrain(pretrain)
                    .finetune(split=downstream))
        assert pipeline.history
        assert {"epoch", "loss", "val_auc"} <= set(pipeline.history[0])
