"""Unit tests for differentiable functional ops."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F

from .conftest import numeric_gradient


def check_against_numeric(build, tensors, atol=1e-6, rtol=1e-5):
    loss = build()
    loss.backward()
    for t in tensors:
        numeric = numeric_gradient(lambda: build().item(), t.data)
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)


class TestElementwise:
    def test_exp_forward_backward(self, rng):
        x = Tensor(rng.normal(size=5), requires_grad=True)
        check_against_numeric(lambda: F.exp(x).sum(), [x])

    def test_log_floors_at_eps(self):
        x = Tensor([-1.0, 0.0, 1.0])
        out = F.log(x)
        assert np.isfinite(out.data).all()

    def test_log_gradient(self, rng):
        x = Tensor(rng.uniform(0.5, 2.0, size=5), requires_grad=True)
        check_against_numeric(lambda: F.log(x).sum(), [x])

    def test_sqrt_gradient(self, rng):
        x = Tensor(rng.uniform(0.5, 4.0, size=5), requires_grad=True)
        check_against_numeric(lambda: F.sqrt(x).sum(), [x])

    def test_abs_gradient(self, rng):
        x = Tensor(rng.normal(size=5) + 0.5, requires_grad=True)
        check_against_numeric(lambda: F.abs_(x).sum(), [x])

    def test_sigmoid_extreme_values_stable(self):
        x = Tensor([-1000.0, 0.0, 1000.0])
        out = F.sigmoid(x)
        np.testing.assert_allclose(out.data, [0.0, 0.5, 1.0], atol=1e-12)

    def test_relu_kills_negative_gradient(self):
        x = Tensor([-1.0, 2.0], requires_grad=True)
        F.relu(x).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0])

    def test_leaky_relu_slope(self):
        x = Tensor([-2.0, 3.0], requires_grad=True)
        F.leaky_relu(x, 0.1).sum().backward()
        np.testing.assert_allclose(x.grad, [0.1, 1.0])

    def test_tanh_range(self, rng):
        out = F.tanh(Tensor(rng.normal(size=100) * 10))
        assert (np.abs(out.data) <= 1.0).all()

    def test_clip_gradient_mask(self):
        x = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        F.clip(x, -1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        out = F.softmax(Tensor(rng.normal(size=(4, 7))))
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4))

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(2, 5))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 1000.0)).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(F.log_softmax(x).data,
                                   np.log(F.softmax(x).data), atol=1e-10)

    def test_log_softmax_gradient(self, rng):
        x = Tensor(rng.normal(size=(2, 6)), requires_grad=True)
        weights = rng.normal(size=(2, 6))
        check_against_numeric(lambda: (F.log_softmax(x) * Tensor(weights)).sum(), [x])


class TestStructuralOps:
    def test_concatenate_splits_gradient(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        weights = rng.normal(size=(2, 5))
        check_against_numeric(
            lambda: (F.concatenate([a, b], axis=1) * Tensor(weights)).sum(), [a, b])

    def test_stack_axis0(self, rng):
        tensors = [Tensor(rng.normal(size=3), requires_grad=True) for _ in range(4)]
        check_against_numeric(lambda: (F.stack(tensors, axis=0) ** 2.0).sum(), tensors)

    def test_embedding_lookup_repeated_indices(self, rng):
        table = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
        idx = np.array([1, 1, 1, 5])
        F.embedding_lookup(table, idx).sum().backward()
        assert table.grad[1].sum() == pytest.approx(12.0)
        assert table.grad[5].sum() == pytest.approx(4.0)
        assert table.grad[0].sum() == 0.0

    def test_scatter_rows_replaces_and_routes_grads(self, rng):
        base = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        rows = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        idx = np.array([1, 3])
        out = F.scatter_rows(base, idx, rows)
        np.testing.assert_allclose(out.data[idx], rows.data)
        out.sum().backward()
        np.testing.assert_allclose(base.grad[idx], np.zeros((2, 3)))
        np.testing.assert_allclose(base.grad[0], np.ones(3))
        np.testing.assert_allclose(rows.grad, np.ones((2, 3)))

    def test_scatter_rows_rejects_duplicate_indices(self, rng):
        base = Tensor(rng.normal(size=(4, 2)))
        rows = Tensor(rng.normal(size=(2, 2)))
        with pytest.raises(ValueError):
            F.scatter_rows(base, np.array([1, 1]), rows)

    def test_scatter_mean_groups(self, rng):
        values = Tensor(np.array([[2.0], [4.0], [6.0]]), requires_grad=True)
        groups = np.array([0, 0, 2])
        out = F.scatter_mean(values, groups, 3)
        np.testing.assert_allclose(out.data, [[3.0], [0.0], [6.0]])
        check_against_numeric(
            lambda: (F.scatter_mean(values, groups, 3) ** 2.0).sum(), [values])

    def test_where_routes_gradient(self, rng):
        a = Tensor(rng.normal(size=4), requires_grad=True)
        b = Tensor(rng.normal(size=4), requires_grad=True)
        cond = np.array([True, False, True, False])
        F.where(cond, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, cond.astype(float))
        np.testing.assert_allclose(b.grad, (~cond).astype(float))

    def test_dropout_eval_is_identity(self, rng):
        x = Tensor(rng.normal(size=(3, 3)))
        out = F.dropout(x, 0.5, training=False, rng=rng)
        assert out is x

    def test_dropout_scales_by_keep_probability(self, rng):
        x = Tensor(np.ones((2000,)))
        out = F.dropout(x, 0.25, training=True, rng=rng)
        kept = out.data[out.data > 0]
        np.testing.assert_allclose(kept, 1.0 / 0.75)
        assert 0.6 < (out.data > 0).mean() < 0.9


class TestDistances:
    def test_euclidean_distance_matches_numpy(self, rng):
        a = Tensor(rng.normal(size=(5, 3)))
        b = Tensor(rng.normal(size=(5, 3)))
        expected = np.linalg.norm(a.data - b.data, axis=1)
        np.testing.assert_allclose(F.euclidean_distance(a, b).data, expected,
                                   rtol=1e-6)

    def test_l2_normalize_unit_norm(self, rng):
        x = Tensor(rng.normal(size=(4, 6)))
        out = F.l2_normalize(x)
        np.testing.assert_allclose(np.linalg.norm(out.data, axis=1), np.ones(4),
                                   rtol=1e-6)

    def test_cosine_similarity_bounds(self, rng):
        a = Tensor(rng.normal(size=(10, 4)))
        b = Tensor(rng.normal(size=(10, 4)))
        sims = F.cosine_similarity(a, b).data
        assert (sims <= 1.0 + 1e-9).all() and (sims >= -1.0 - 1e-9).all()

    def test_cosine_similarity_self_is_one(self, rng):
        a = Tensor(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(F.cosine_similarity(a, a).data, np.ones(3),
                                   rtol=1e-6)
