"""Shared fixtures: seeded RNGs, small streams, finite-difference helper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (InteractionConfig, BipartiteInteractionGenerator,
                            LabeledConfig, LabeledInteractionGenerator)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_stream():
    """A ~200-event bipartite stream for fast integration tests."""
    config = InteractionConfig(num_users=20, num_items=15, num_events=200,
                               time_span=50.0, candidate_size=10)
    return BipartiteInteractionGenerator(config, seed=7).generate(name="tiny")


@pytest.fixture
def tiny_labeled_stream():
    """A small labelled stream with both classes present."""
    base = InteractionConfig(num_users=25, num_items=12, num_events=300,
                             time_span=30.0, candidate_size=10)
    config = LabeledConfig(base=base, deviant_fraction=0.3,
                           threshold_mean=2.0, susceptible_fraction=0.6)
    return LabeledInteractionGenerator(config, seed=11).generate(name="tiny-labeled")


def numeric_gradient(fn, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar function w.r.t. ``array``."""
    grad = np.zeros_like(array)
    it = np.nditer(array, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = array[idx]
        array[idx] = original + eps
        plus = fn()
        array[idx] = original - eps
        minus = fn()
        array[idx] = original
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


def assert_grad_close(fn, tensor, atol: float = 1e-6, rtol: float = 1e-5):
    """Check ``tensor.grad`` (already populated) against finite differences."""
    numeric = numeric_gradient(lambda: fn().item(), tensor.data)
    analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)
