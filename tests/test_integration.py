"""Cross-module integration tests: full pipelines, persistence, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CPDGConfig, CPDGPreTrainer, MemoryCheckpoints
from repro.datasets import (SMALL, amazon_universe, make_transfer_split,
                            split_downstream)
from repro.graph import EventStream, load_npz, save_npz
from repro.nn import load_arrays, load_module, save_arrays, save_module
from repro.tasks import (FineTuneConfig, LinkPredictionTask,
                         build_finetuned_encoder)


def tiny_cfg(**kwargs):
    defaults = dict(eta=3, epsilon=3, depth=1, epochs=1, batch_size=64,
                    memory_dim=8, embed_dim=8, time_dim=4, n_neighbors=3,
                    num_checkpoints=3, seed=0)
    defaults.update(kwargs)
    return CPDGConfig(**defaults)


class TestPretrainPersistenceRoundtrip:
    """Pre-train → save to disk → load → fine-tune must equal the direct
    path exactly (same arrays, same downstream metrics)."""

    def test_full_roundtrip(self, tiny_stream, tmp_path):
        cfg = tiny_cfg()
        trainer = CPDGPreTrainer.from_backbone("tgn", tiny_stream.num_nodes,
                                               cfg)
        result = trainer.pretrain(tiny_stream)

        # Persist every transfer artifact.
        save_module(trainer.encoder, str(tmp_path / "encoder.npz"))
        save_arrays(str(tmp_path / "memory.npz"), {
            "state": result.memory_state,
            "last_update": result.last_update,
            **{f"ckpt_{i}": result.checkpoints[i]
               for i in range(len(result.checkpoints))},
        })

        # Rebuild from disk.
        arrays = load_arrays(str(tmp_path / "memory.npz"))
        checkpoints = MemoryCheckpoints()
        for i in range(len(result.checkpoints)):
            checkpoints.add(arrays[f"ckpt_{i}"])
        from repro.core.pretrainer import PretrainResult
        restored = PretrainResult(
            encoder_state=result.encoder_state,
            memory_state=arrays["state"],
            last_update=arrays["last_update"],
            checkpoints=checkpoints,
        )

        ft = FineTuneConfig(epochs=1, batch_size=64, patience=1, seed=0)
        split = split_downstream(tiny_stream)
        direct = build_finetuned_encoder("tgn", tiny_stream.num_nodes, cfg,
                                         result, "eie-gru", ft)
        from_disk = build_finetuned_encoder("tgn", tiny_stream.num_nodes, cfg,
                                            restored, "eie-gru", ft)
        m1 = LinkPredictionTask(direct, split, ft).run()
        m2 = LinkPredictionTask(from_disk, split, ft).run()
        assert m1.auc == pytest.approx(m2.auc, abs=1e-12)
        assert m1.ap == pytest.approx(m2.ap, abs=1e-12)

    def test_stream_roundtrip_preserves_pipeline(self, tiny_stream, tmp_path):
        """Pre-training on a disk-roundtripped stream is identical."""
        path = str(tmp_path / "stream.npz")
        save_npz(tiny_stream, path)
        reloaded = load_npz(path)
        r1 = CPDGPreTrainer.from_backbone(
            "jodie", tiny_stream.num_nodes, tiny_cfg()).pretrain(tiny_stream)
        r2 = CPDGPreTrainer.from_backbone(
            "jodie", reloaded.num_nodes, tiny_cfg()).pretrain(reloaded)
        np.testing.assert_allclose(r1.memory_state, r2.memory_state)


class TestTransferPipeline:
    def test_field_transfer_carries_user_memory(self):
        """After pre-training on the source field, shared users hold
        non-zero memory that field transfer carries downstream."""
        universe = amazon_universe(SMALL)
        split = make_transfer_split("field", universe.stream("beauty"),
                                    universe.stream("arts"), 60.0)
        cfg = tiny_cfg()
        trainer = CPDGPreTrainer.from_backbone("tgn", universe.num_nodes, cfg)
        result = trainer.pretrain(split.pretrain)
        user_rows = result.memory_state[:universe.num_users]
        assert (np.abs(user_rows).sum(axis=1) > 0).any()
        # Beauty item rows were never touched during arts pre-training.
        beauty_offset = universe.item_offset("beauty")
        beauty_rows = result.memory_state[
            beauty_offset:beauty_offset + universe.items_per_field]
        assert np.abs(beauty_rows).sum() == 0.0

    def test_all_transfer_settings_complete(self):
        universe = amazon_universe(SMALL)
        cfg = tiny_cfg()
        ft = FineTuneConfig(epochs=1, batch_size=64, patience=1, seed=0)
        for setting in ("time", "field", "time+field"):
            split = make_transfer_split(setting, universe.stream("beauty"),
                                        universe.stream("arts"), 60.0)
            trainer = CPDGPreTrainer.from_backbone("jodie",
                                                   universe.num_nodes, cfg)
            result = trainer.pretrain(split.pretrain)
            strat = build_finetuned_encoder("jodie", universe.num_nodes, cfg,
                                            result, "full", ft)
            metrics = LinkPredictionTask(strat, split.downstream, ft).run()
            assert np.isfinite(metrics.auc), setting


class TestDeterminism:
    def test_experiment_cells_reproducible(self):
        """The same seed must give bitwise-identical downstream metrics."""
        from repro.experiments.common import SCALES, run_no_pretrain
        universe = amazon_universe(SMALL)
        split = make_transfer_split("time", universe.stream("beauty"),
                                    universe.stream("arts"), 60.0)
        exp = SCALES["tiny"]
        a = run_no_pretrain("tgn", universe.num_nodes, split.downstream,
                            exp, seed=0)
        b = run_no_pretrain("tgn", universe.num_nodes, split.downstream,
                            exp, seed=0)
        assert a.auc == b.auc
        assert a.ap == b.ap


class TestFailureInjection:
    def test_encoder_handles_nodes_with_no_history(self, tiny_stream, rng):
        from repro.dgnn import make_encoder
        enc = make_encoder("tgn", tiny_stream.num_nodes + 5, rng,
                           memory_dim=8, embed_dim=8, time_dim=4, edge_dim=4,
                           n_neighbors=3)
        padded = EventStream(src=tiny_stream.src, dst=tiny_stream.dst,
                             timestamps=tiny_stream.timestamps,
                             num_nodes=tiny_stream.num_nodes + 5,
                             edge_feats=tiny_stream.edge_feats)
        enc.attach(padded)
        ghost = np.array([tiny_stream.num_nodes + 2])
        z = enc.compute_embedding(ghost, np.array([25.0]))
        assert np.isfinite(z.data).all()

    def test_pretrainer_on_minimal_stream(self):
        """Two events are enough for a degenerate but crash-free run."""
        stream = EventStream(src=[0, 1], dst=[2, 2],
                             timestamps=[1.0, 2.0], num_nodes=3,
                             edge_feats=np.zeros((2, 4)))
        trainer = CPDGPreTrainer.from_backbone("tgn", 3, tiny_cfg(batch_size=1))
        result = trainer.pretrain(stream)
        assert np.isfinite(np.array(result.loss_history)).all()

    def test_task_with_constant_timestamps(self, rng):
        """All events at one instant: strictly-before queries are empty,
        the pipeline must stay finite."""
        n = 60
        stream = EventStream(src=rng.integers(0, 5, n),
                             dst=rng.integers(5, 10, n),
                             timestamps=np.full(n, 7.0), num_nodes=10,
                             edge_feats=rng.normal(size=(n, 4)))
        cfg = tiny_cfg()
        ft = FineTuneConfig(epochs=1, batch_size=32, patience=1, seed=0)
        strat = build_finetuned_encoder("tgn", 10, cfg, None, "none", ft)
        metrics = LinkPredictionTask(strat, split_downstream(stream), ft).run()
        assert np.isnan(metrics.auc) or 0.0 <= metrics.auc <= 1.0

    def test_eie_single_checkpoint(self, tiny_stream):
        cfg = tiny_cfg(num_checkpoints=1)
        trainer = CPDGPreTrainer.from_backbone("tgn", tiny_stream.num_nodes,
                                               cfg)
        result = trainer.pretrain(tiny_stream)
        assert len(result.checkpoints) == 1
        ft = FineTuneConfig(epochs=1, batch_size=64, patience=1, seed=0)
        strat = build_finetuned_encoder("tgn", tiny_stream.num_nodes, cfg,
                                        result, "eie-gru", ft)
        metrics = LinkPredictionTask(strat, split_downstream(tiny_stream),
                                     ft).run()
        assert np.isfinite(metrics.auc)
