"""Unit tests for layers, recurrent cells, attention and the module system."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (MLP, AdditiveAttention, Dropout, Embedding, GRUCell,
                      Identity, LSTMCell, LayerNorm, Linear, Module,
                      Parameter, RNNCell, Sequential, TemporalAttention,
                      Tensor, run_rnn)

from .conftest import numeric_gradient


class TestLinearAndMLP:
    def test_linear_shapes(self, rng):
        layer = Linear(4, 7, rng)
        out = layer(Tensor(rng.normal(size=(3, 4))))
        assert out.shape == (3, 7)

    def test_linear_no_bias(self, rng):
        layer = Linear(4, 2, rng, bias=False)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((2, 4))))
        np.testing.assert_allclose(out.data, np.zeros((2, 2)))

    def test_mlp_depth(self, rng):
        mlp = MLP([4, 8, 8, 2], rng)
        assert len(mlp.layers) == 3
        assert mlp(Tensor(rng.normal(size=(5, 4)))).shape == (5, 2)

    def test_mlp_requires_two_dims(self, rng):
        with pytest.raises(ValueError):
            MLP([4], rng)

    def test_mlp_unknown_activation(self, rng):
        with pytest.raises(ValueError):
            MLP([4, 2], rng, activation="swish")

    def test_mlp_gradients_flow_to_all_layers(self, rng):
        mlp = MLP([3, 5, 2], rng)
        loss = (mlp(Tensor(rng.normal(size=(4, 3)))) ** 2.0).sum()
        loss.backward()
        assert all(p.grad is not None for p in mlp.parameters())


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = Embedding(10, 6, rng)
        assert emb(np.array([0, 3, 3])).shape == (3, 6)

    def test_gradient_only_on_used_rows(self, rng):
        emb = Embedding(5, 3, rng)
        emb(np.array([1, 2])).sum().backward()
        assert emb.weight.grad[0].sum() == 0.0
        assert emb.weight.grad[1].sum() != 0.0


class TestLayerNorm:
    def test_output_statistics(self, rng):
        ln = LayerNorm(16)
        out = ln(Tensor(rng.normal(2.0, 3.0, size=(8, 16))))
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(8), atol=1e-7)
        np.testing.assert_allclose(out.data.std(axis=-1), np.ones(8), atol=1e-2)

    def test_gradient(self, rng):
        ln = LayerNorm(4)
        x = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        weights = rng.normal(size=(2, 4))

        def build():
            return (ln(x) * Tensor(weights)).sum()

        build().backward()
        numeric = numeric_gradient(lambda: build().item(), x.data)
        np.testing.assert_allclose(x.grad, numeric, atol=1e-6, rtol=1e-4)


class TestDropoutLayer:
    def test_training_vs_eval(self, rng):
        drop = Dropout(0.5, rng)
        x = Tensor(np.ones((100,)))
        drop.train()
        assert (drop(x).data == 0).any()
        drop.eval()
        np.testing.assert_allclose(drop(x).data, np.ones(100))

    def test_invalid_probability(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)


class TestRecurrentCells:
    @pytest.mark.parametrize("cell_cls", [RNNCell, GRUCell])
    def test_state_shape_preserved(self, cell_cls, rng):
        cell = cell_cls(3, 5, rng)
        h = cell(Tensor(rng.normal(size=(2, 3))), Tensor(np.zeros((2, 5))))
        assert h.shape == (2, 5)

    def test_lstm_returns_pair(self, rng):
        cell = LSTMCell(3, 4, rng)
        h, c = cell(Tensor(rng.normal(size=(2, 3))),
                    (Tensor(np.zeros((2, 4))), Tensor(np.zeros((2, 4)))))
        assert h.shape == (2, 4)
        assert c.shape == (2, 4)

    def test_gru_interpolates_between_state_and_candidate(self, rng):
        cell = GRUCell(2, 3, rng)
        h = Tensor(rng.normal(size=(1, 3)))
        out = cell(Tensor(rng.normal(size=(1, 2))), h)
        assert (np.abs(out.data) <= 1.0 + np.abs(h.data)).all()

    def test_run_rnn_unrolls(self, rng):
        cell = GRUCell(2, 3, rng)
        seq = [Tensor(rng.normal(size=(2, 2))) for _ in range(4)]
        final = run_rnn(cell, seq, Tensor(np.zeros((2, 3))))
        assert final.shape == (2, 3)

    def test_bptt_through_steps(self, rng):
        cell = RNNCell(2, 3, rng)
        x = Tensor(rng.normal(size=(1, 2)), requires_grad=True)
        h = Tensor(np.zeros((1, 3)))
        for _ in range(3):
            h = cell(x, h)
        (h ** 2.0).sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad).sum() > 0


class TestAttention:
    def test_temporal_attention_shapes(self, rng):
        att = TemporalAttention(6, 5, 8, 2, rng)
        out = att(Tensor(rng.normal(size=(3, 6))),
                  Tensor(rng.normal(size=(3, 4, 5))))
        assert out.shape == (3, 8)

    def test_out_dim_divisible_by_heads(self, rng):
        with pytest.raises(ValueError):
            TemporalAttention(4, 4, 7, 2, rng)

    def test_mask_ignores_padded_slots(self, rng):
        att = TemporalAttention(4, 4, 4, 1, rng)
        query = Tensor(rng.normal(size=(1, 4)))
        keys_data = rng.normal(size=(1, 3, 4))
        mask = np.array([[False, True, True]])
        out_masked = att(query, Tensor(keys_data), mask).data
        # Changing masked slots must not change the output.
        keys_data2 = keys_data.copy()
        keys_data2[0, 1:] = 100.0
        out_masked2 = att(query, Tensor(keys_data2), mask).data
        np.testing.assert_allclose(out_masked, out_masked2, atol=1e-8)

    def test_additive_attention_weights_sum_to_one(self, rng):
        att = AdditiveAttention(4, 6, rng)
        seq = [Tensor(rng.normal(size=(2, 4))) for _ in range(5)]
        out = att(seq)
        assert out.shape == (2, 4)
        # Output is a convex combination: lies within min/max envelope.
        stacked = np.stack([t.data for t in seq])
        assert (out.data <= stacked.max(axis=0) + 1e-9).all()
        assert (out.data >= stacked.min(axis=0) - 1e-9).all()


class TestModuleSystem:
    def test_named_parameters_nested(self, rng):
        class Wrapper(Module):
            def __init__(self):
                super().__init__()
                self.inner = Linear(2, 2, rng)
                self.items = [Linear(2, 2, rng)]
                self.table = {"a": Linear(2, 2, rng)}

        names = dict(Wrapper().named_parameters())
        assert "inner.weight" in names
        assert "items.0.weight" in names
        assert "table.a.weight" in names

    def test_state_dict_roundtrip(self, rng):
        a = MLP([3, 4, 2], rng)
        b = MLP([3, 4, 2], np.random.default_rng(999))
        b.load_state_dict(a.state_dict())
        x = Tensor(rng.normal(size=(2, 3)))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_load_state_dict_rejects_mismatch(self, rng):
        a = MLP([3, 4, 2], rng)
        state = a.state_dict()
        state["bogus"] = np.zeros(3)
        with pytest.raises(KeyError):
            a.load_state_dict(state)

    def test_zero_grad_clears(self, rng):
        m = Linear(2, 2, rng)
        (m(Tensor(np.ones((1, 2)))) ** 2.0).sum().backward()
        assert m.weight.grad is not None
        m.zero_grad()
        assert m.weight.grad is None

    def test_train_eval_propagates(self, rng):
        seq = Sequential(Linear(2, 2, rng), Dropout(0.5, rng), Identity())
        seq.eval()
        assert all(not mod.training for mod in seq.modules())
        seq.train()
        assert all(mod.training for mod in seq.modules())

    def test_num_parameters(self, rng):
        m = Linear(3, 4, rng)
        assert m.num_parameters() == 3 * 4 + 4
