"""Unit tests for the CPDG samplers and probability functions (paper §IV-A)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (EpsilonDFSSampler, EtaBFSSampler, PrecomputedSampler,
                        chronological_probability,
                        reverse_chronological_probability,
                        uniform_probability)
from repro.graph import EventStream, NeighborFinder


def star_stream():
    """Node 0 interacts with 1..5 at times 1..5; node 5 also touches 6."""
    return EventStream(
        src=[0, 0, 0, 0, 0, 5],
        dst=[1, 2, 3, 4, 5, 6],
        timestamps=[1.0, 2.0, 3.0, 4.0, 5.0, 5.5],
        num_nodes=7,
    )


class TestProbabilities:
    def test_chronological_favours_recent(self):
        times = np.array([1.0, 2.0, 3.0, 4.0])
        probs = chronological_probability(times, 5.0, tau=0.2)
        assert (np.diff(probs) > 0).all()
        assert probs.sum() == pytest.approx(1.0)

    def test_reverse_favours_old(self):
        times = np.array([1.0, 2.0, 3.0, 4.0])
        probs = reverse_chronological_probability(times, 5.0, tau=0.2)
        assert (np.diff(probs) < 0).all()
        assert probs.sum() == pytest.approx(1.0)

    def test_chronological_and_reverse_are_mirrors(self):
        times = np.array([1.0, 2.0, 3.0])
        chrono = chronological_probability(times, 4.0, tau=0.3)
        reverse = reverse_chronological_probability(times, 4.0, tau=0.3)
        np.testing.assert_allclose(chrono, reverse[::-1], rtol=1e-10)

    def test_uniform(self):
        probs = uniform_probability(np.arange(4, dtype=float), 5.0)
        np.testing.assert_allclose(probs, np.full(4, 0.25))

    def test_degenerate_single_event(self):
        probs = chronological_probability(np.array([2.0]), 2.0)
        np.testing.assert_allclose(probs, [1.0])

    def test_temperature_sharpens(self):
        times = np.array([1.0, 2.0, 3.0, 4.0])
        sharp = chronological_probability(times, 5.0, tau=0.05)
        soft = chronological_probability(times, 5.0, tau=2.0)
        assert sharp.max() > soft.max()


class TestEtaBFS:
    def test_returns_unique_nodes_without_root(self):
        finder = NeighborFinder(star_stream())
        sampler = EtaBFSSampler(finder, eta=3, depth=2, seed=0)
        nodes = sampler.sample(0, 6.0)
        assert 0 not in nodes
        assert len(set(nodes.tolist())) == len(nodes)

    def test_empty_history_gives_empty_subgraph(self):
        finder = NeighborFinder(star_stream())
        sampler = EtaBFSSampler(finder, eta=3, depth=2, seed=0)
        assert len(sampler.sample(6, 5.0)) == 0  # node 6's event is at 5.5

    def test_respects_time_cut(self):
        finder = NeighborFinder(star_stream())
        sampler = EtaBFSSampler(finder, eta=5, depth=1, seed=0)
        nodes = sampler.sample(0, 3.5)
        assert set(nodes.tolist()) <= {1, 2, 3}

    def test_width_bounds_fanout(self):
        finder = NeighborFinder(star_stream())
        sampler = EtaBFSSampler(finder, eta=2, depth=1, seed=0)
        assert len(sampler.sample(0, 6.0)) <= 2

    def test_chronological_sampler_prefers_recent(self):
        finder = NeighborFinder(star_stream())
        recent_counts = {n: 0 for n in range(1, 6)}
        sampler = EtaBFSSampler(finder, eta=1, depth=1,
                                probability="chronological", tau=0.1, seed=1)
        for _ in range(300):
            for node in sampler.sample(0, 6.0):
                recent_counts[int(node)] += 1
        # Node 5 (latest event) must dominate node 1 (oldest).
        assert recent_counts[5] > recent_counts[1] * 2

    def test_reverse_sampler_prefers_old(self):
        finder = NeighborFinder(star_stream())
        counts = {n: 0 for n in range(1, 6)}
        sampler = EtaBFSSampler(finder, eta=1, depth=1,
                                probability="reverse", tau=0.1, seed=1)
        for _ in range(300):
            for node in sampler.sample(0, 6.0):
                counts[int(node)] += 1
        assert counts[1] > counts[5] * 2

    def test_two_hop_reaches_second_ring(self):
        finder = NeighborFinder(star_stream())
        sampler = EtaBFSSampler(finder, eta=5, depth=2, seed=3)
        nodes = set(sampler.sample(0, 6.0).tolist())
        assert 6 in nodes  # reachable only through node 5

    def test_validates_parameters(self):
        finder = NeighborFinder(star_stream())
        with pytest.raises(ValueError):
            EtaBFSSampler(finder, eta=0, depth=1)
        with pytest.raises(ValueError):
            EtaBFSSampler(finder, eta=1, depth=0)


class TestEpsilonDFS:
    def test_takes_most_recent(self):
        finder = NeighborFinder(star_stream())
        sampler = EpsilonDFSSampler(finder, epsilon=2, depth=1)
        nodes = set(sampler.sample(0, 6.0).tolist())
        assert nodes == {4, 5}

    def test_is_deterministic(self):
        finder = NeighborFinder(star_stream())
        sampler = EpsilonDFSSampler(finder, epsilon=3, depth=2)
        a = sampler.sample(0, 6.0)
        b = sampler.sample(0, 6.0)
        np.testing.assert_array_equal(a, b)

    def test_depth_expands_recursively(self):
        finder = NeighborFinder(star_stream())
        shallow = set(EpsilonDFSSampler(finder, 2, 1).sample(0, 6.0).tolist())
        deep = set(EpsilonDFSSampler(finder, 2, 2).sample(0, 6.0).tolist())
        assert shallow <= deep
        assert 6 in deep

    def test_respects_time(self):
        finder = NeighborFinder(star_stream())
        sampler = EpsilonDFSSampler(finder, epsilon=5, depth=2)
        nodes = set(sampler.sample(0, 5.2).tolist())
        assert 6 not in nodes  # 5-6 interaction happens at 5.5

    def test_validates_parameters(self):
        finder = NeighborFinder(star_stream())
        with pytest.raises(ValueError):
            EpsilonDFSSampler(finder, epsilon=0, depth=1)


class TestPrecomputedSampler:
    def test_caches_by_root_and_time(self):
        finder = NeighborFinder(star_stream())
        inner = EpsilonDFSSampler(finder, epsilon=2, depth=1)
        cached = PrecomputedSampler(inner)
        a = cached.sample(0, 6.0)
        b = cached.sample(0, 6.0)
        assert a is b
        assert cached.cache_size == 1
        cached.sample(0, 5.0)
        assert cached.cache_size == 2

    def test_matches_online_sampler(self):
        finder = NeighborFinder(star_stream())
        inner = EpsilonDFSSampler(finder, epsilon=2, depth=2)
        cached = PrecomputedSampler(EpsilonDFSSampler(finder, 2, 2))
        np.testing.assert_array_equal(cached.sample(0, 6.0),
                                      inner.sample(0, 6.0))

    def test_hit_miss_counters(self):
        finder = NeighborFinder(star_stream())
        cached = PrecomputedSampler(EpsilonDFSSampler(finder, 2, 1))
        cached.sample(0, 6.0)
        cached.sample(0, 6.0)
        cached.sample(0, 5.0)
        assert cached.hits == 1
        assert cached.misses == 2
        info = cached.cache_info()
        assert info == {"hits": 1, "misses": 2, "size": 2, "capacity": None}

    def test_capacity_bounds_cache(self):
        finder = NeighborFinder(star_stream())
        cached = PrecomputedSampler(EpsilonDFSSampler(finder, 2, 1), capacity=2)
        for t in (3.0, 4.0, 5.0, 6.0):
            cached.sample(0, t)
        assert cached.cache_size == 2

    def test_lru_evicts_least_recently_used(self):
        finder = NeighborFinder(star_stream())
        cached = PrecomputedSampler(EpsilonDFSSampler(finder, 2, 1), capacity=2)
        cached.sample(0, 3.0)
        cached.sample(0, 4.0)
        cached.sample(0, 3.0)        # refresh (0, 3.0)
        cached.sample(0, 5.0)        # evicts (0, 4.0)
        assert cached.hits == 1
        cached.sample(0, 3.0)
        assert cached.hits == 2      # survived eviction
        cached.sample(0, 4.0)
        assert cached.misses == 4    # 3.0, 4.0, 5.0, then 4.0 again

    def test_rejects_bad_capacity(self):
        finder = NeighborFinder(star_stream())
        with pytest.raises(ValueError):
            PrecomputedSampler(EpsilonDFSSampler(finder, 2, 1), capacity=0)
