"""Tests for ranking metrics, TGAT, readout/objective variants and the CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (CPDGConfig, CPDGPreTrainer, StructuralContrast,
                        TemporalContrast, subgraph_readout)
from repro.datasets import split_downstream
from repro.dgnn import TGATEncoder
from repro.graph import NeighborFinder
from repro.nn import Tensor
from repro.tasks import (FineTuneConfig, FineTuneStrategy,
                         LinkPredictionTask, build_finetuned_encoder,
                         hits_at_k, mean_reciprocal_rank, reciprocal_ranks,
                         summarize_ranks)


class TestRankingMetrics:
    def test_perfect_ranking(self):
        pos = np.array([0.9, 0.8])
        neg = np.array([[0.1, 0.2], [0.3, 0.1]])
        assert mean_reciprocal_rank(pos, neg) == 1.0
        assert hits_at_k(pos, neg, 1) == 1.0

    def test_worst_ranking(self):
        pos = np.array([0.1])
        neg = np.array([[0.5, 0.6, 0.7]])
        np.testing.assert_allclose(reciprocal_ranks(pos, neg), [0.25])
        assert hits_at_k(pos, neg, 3) == 0.0
        assert hits_at_k(pos, neg, 4) == 1.0

    def test_ties_count_against_positive(self):
        pos = np.array([0.5])
        neg = np.array([[0.5, 0.1]])
        np.testing.assert_allclose(reciprocal_ranks(pos, neg), [0.5])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            reciprocal_ranks(np.ones(3), np.ones(3))

    def test_summary_bundle(self):
        pos = np.array([0.9, 0.05])
        neg = np.tile(np.linspace(0.1, 0.8, 10), (2, 1))
        summary = summarize_ranks(pos, neg)
        assert summary.num_queries == 2
        assert summary.mrr == pytest.approx((1.0 + 1 / 11) / 2)
        assert summary.hits_at_1 == 0.5
        row = summary.as_row()
        assert {"MRR", "Hits@1", "Hits@5", "Hits@10", "n"} == set(row)

    def test_task_ranking_evaluation(self, tiny_stream):
        cfg = CPDGConfig(eta=3, epsilon=3, depth=1, epochs=1, batch_size=64,
                         memory_dim=8, embed_dim=8, time_dim=4,
                         n_neighbors=3, num_checkpoints=2, seed=0)
        ft = FineTuneConfig(epochs=1, batch_size=64, patience=1, seed=0)
        strat = build_finetuned_encoder("tgn", tiny_stream.num_nodes, cfg,
                                        None, "none", ft)
        task = LinkPredictionTask(strat, split_downstream(tiny_stream), ft)
        task.train()
        summary = task.evaluate_ranking(num_candidates=5)
        assert 0.0 < summary.mrr <= 1.0
        assert summary.num_queries == task.split.test.num_events


class TestTGAT:
    def test_embedding_shape_and_layers(self, tiny_stream, rng):
        enc = TGATEncoder(tiny_stream.num_nodes, embed_dim=8, time_dim=4,
                          num_heads=2, n_neighbors=3, n_layers=2, rng=rng,
                          edge_dim=4)
        enc.attach(tiny_stream)
        z = enc.compute_embedding(np.array([0, 1]), np.full(2, 30.0))
        assert z.shape == (2, 8)

    def test_time_sensitivity(self, tiny_stream, rng):
        enc = TGATEncoder(tiny_stream.num_nodes, embed_dim=8, time_dim=4,
                          num_heads=1, n_neighbors=3, n_layers=1, rng=rng)
        enc.attach(tiny_stream)
        node = np.array([int(tiny_stream.src[20])])
        z1 = enc.compute_embedding(node, np.array([tiny_stream.t_max])).data
        z2 = enc.compute_embedding(node, np.array([tiny_stream.t_max + 30.0])).data
        assert np.abs(z1 - z2).max() > 1e-9

    def test_runs_through_link_prediction_task(self, tiny_stream, rng):
        enc = TGATEncoder(tiny_stream.num_nodes, embed_dim=8, time_dim=4,
                          num_heads=1, n_neighbors=3, n_layers=1, rng=rng)
        ft = FineTuneConfig(epochs=1, batch_size=64, patience=1, seed=0)
        strategy = FineTuneStrategy(name="tgat", encoder=enc, eie=None)
        metrics = LinkPredictionTask(strategy, split_downstream(tiny_stream),
                                     ft).run()
        assert np.isfinite(metrics.auc)

    def test_validates_layers(self, rng):
        with pytest.raises(ValueError):
            TGATEncoder(10, 8, 4, 1, 3, 0, rng)


class TestReadoutVariants:
    def test_max_readout(self):
        memory = Tensor(np.array([[1.0, 5.0], [3.0, 2.0], [0.0, 0.0]]))
        out = subgraph_readout(memory, [np.array([0, 1])], mode="max")
        np.testing.assert_allclose(out.data, [[3.0, 5.0]])

    def test_sum_readout(self):
        memory = Tensor(np.array([[1.0, 5.0], [3.0, 2.0]]))
        out = subgraph_readout(memory, [np.array([0, 1])], mode="sum")
        np.testing.assert_allclose(out.data, [[4.0, 7.0]])

    def test_max_readout_empty_subgraph(self):
        memory = Tensor(np.ones((3, 2)))
        out = subgraph_readout(memory, [np.array([], dtype=int),
                                        np.array([1])], mode="max")
        np.testing.assert_allclose(out.data[0], [0.0, 0.0])
        np.testing.assert_allclose(out.data[1], [1.0, 1.0])

    def test_unknown_readout(self):
        with pytest.raises(ValueError):
            subgraph_readout(Tensor(np.ones((2, 2))), [np.array([0])],
                             mode="median")

    def test_readout_gradients(self, rng):
        for mode in ("max", "sum"):
            memory = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
            out = subgraph_readout(memory, [np.array([0, 2]),
                                            np.array([1])], mode=mode)
            (out ** 2.0).sum().backward()
            assert memory.grad is not None


class TestObjectiveVariants:
    def test_infonce_contrast_runs(self, tiny_stream, rng):
        finder = NeighborFinder(tiny_stream)
        contrast = TemporalContrast(finder, eta=3, depth=1, seed=0,
                                    objective="infonce")
        memory = Tensor(rng.normal(size=(tiny_stream.num_nodes, 8)),
                        requires_grad=True)
        z = Tensor(rng.normal(size=(6, 8)), requires_grad=True)
        loss = contrast.loss(z, memory, tiny_stream.src[:6],
                             tiny_stream.timestamps[:6] + 1.0)
        loss.backward()
        assert np.isfinite(loss.item())
        assert z.grad is not None

    def test_unknown_objective_raises(self, tiny_stream, rng):
        finder = NeighborFinder(tiny_stream)
        contrast = StructuralContrast(finder, epsilon=3, depth=1, seed=0,
                                      objective="margin-of-error")
        memory = Tensor(rng.normal(size=(tiny_stream.num_nodes, 8)))
        z = Tensor(rng.normal(size=(4, 8)))
        with pytest.raises(ValueError):
            contrast.loss(z, memory, tiny_stream.src[:4],
                          tiny_stream.timestamps[:4] + 1.0,
                          tiny_stream.num_nodes)

    def test_pretrainer_with_infonce_and_max_readout(self, tiny_stream):
        cfg = CPDGConfig(eta=3, epsilon=3, depth=1, epochs=1, batch_size=64,
                         memory_dim=8, embed_dim=8, time_dim=4,
                         n_neighbors=3, num_checkpoints=2, seed=0,
                         objective="infonce", readout="max")
        trainer = CPDGPreTrainer.from_backbone("tgn", tiny_stream.num_nodes,
                                               cfg)
        result = trainer.pretrain(tiny_stream)
        history = np.array(result.loss_history)
        assert np.isfinite(history).all()

    def test_config_validates_objective(self):
        with pytest.raises(ValueError):
            CPDGConfig(objective="nce2").validate()
        with pytest.raises(ValueError):
            CPDGConfig(readout="median").validate()


class TestCLI:
    def test_list_command(self, capsys):
        from repro.__main__ import main
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table7" in out and "ablations" in out

    def test_profile_command(self, capsys):
        from repro.__main__ import main
        assert main(["profile", "wikipedia"]) == 0
        out = capsys.readouterr().out
        assert "burstiness" in out

    def test_profile_unknown_dataset(self, capsys):
        from repro.__main__ import main
        assert main(["profile", "nope"]) == 2

    def test_run_command_writes_file(self, tmp_path, capsys):
        from repro.__main__ import main
        out_path = str(tmp_path / "table.txt")
        code = main(["run", "table5_6", "--scale", "tiny", "--quiet",
                     "--out", out_path])
        assert code == 0
        with open(out_path) as fh:
            assert "dataset statistics" in fh.read()
