"""Integration tests for the CPDG pre-training loop (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CPDGConfig, CPDGPreTrainer
from repro.dgnn import make_encoder


def small_config(**kwargs):
    defaults = dict(eta=3, epsilon=3, depth=1, epochs=1, batch_size=64,
                    memory_dim=8, embed_dim=8, time_dim=4, n_neighbors=3,
                    num_checkpoints=3, seed=0)
    defaults.update(kwargs)
    return CPDGConfig(**defaults)


class TestPretrainer:
    def test_produces_complete_result(self, tiny_stream):
        trainer = CPDGPreTrainer.from_backbone("tgn", tiny_stream.num_nodes,
                                               small_config())
        result = trainer.pretrain(tiny_stream)
        assert len(result.checkpoints) == 3
        assert result.memory_state.shape == (tiny_stream.num_nodes, 8)
        assert result.last_update.shape == (tiny_stream.num_nodes,)
        assert len(result.loss_history) == int(np.ceil(200 / 64))
        assert set(result.encoder_state) == set(
            trainer.encoder.state_dict())

    def test_loss_history_components_finite(self, tiny_stream):
        trainer = CPDGPreTrainer.from_backbone("jodie", tiny_stream.num_nodes,
                                               small_config(epochs=2))
        result = trainer.pretrain(tiny_stream)
        history = np.array(result.loss_history)
        assert np.isfinite(history).all()
        assert (history >= 0).all()

    def test_deterministic_given_seed(self, tiny_stream):
        r1 = CPDGPreTrainer.from_backbone(
            "tgn", tiny_stream.num_nodes, small_config()).pretrain(tiny_stream)
        r2 = CPDGPreTrainer.from_backbone(
            "tgn", tiny_stream.num_nodes, small_config()).pretrain(tiny_stream)
        np.testing.assert_allclose(r1.memory_state, r2.memory_state)
        for key in r1.encoder_state:
            np.testing.assert_allclose(r1.encoder_state[key],
                                       r2.encoder_state[key], err_msg=key)

    def test_different_seeds_differ(self, tiny_stream):
        r1 = CPDGPreTrainer.from_backbone(
            "tgn", tiny_stream.num_nodes, small_config(seed=0)).pretrain(tiny_stream)
        r2 = CPDGPreTrainer.from_backbone(
            "tgn", tiny_stream.num_nodes, small_config(seed=1)).pretrain(tiny_stream)
        assert np.abs(r1.memory_state - r2.memory_state).max() > 0

    def test_ablation_flags_zero_out_losses(self, tiny_stream):
        cfg = small_config(use_temporal_contrast=False,
                           use_structural_contrast=False)
        trainer = CPDGPreTrainer.from_backbone("tgn", tiny_stream.num_nodes, cfg)
        result = trainer.pretrain(tiny_stream)
        history = np.array(result.loss_history)
        assert (history[:, 0] == 0).all()   # L_eta disabled
        assert (history[:, 1] == 0).all()   # L_eps disabled
        assert (history[:, 2] > 0).all()    # pretext always on

    def test_beta_extremes_skip_opposite_contrast(self, tiny_stream):
        result = CPDGPreTrainer.from_backbone(
            "tgn", tiny_stream.num_nodes,
            small_config(beta=1.0)).pretrain(tiny_stream)
        history = np.array(result.loss_history)
        assert (history[:, 0] == 0).all()   # beta=1 -> no temporal term

    def test_pretraining_moves_parameters(self, tiny_stream):
        cfg = small_config(epochs=2)
        trainer = CPDGPreTrainer.from_backbone("tgn", tiny_stream.num_nodes, cfg)
        before = {k: v.copy() for k, v in trainer.encoder.state_dict().items()}
        trainer.pretrain(tiny_stream)
        after = trainer.encoder.state_dict()
        moved = any(np.abs(before[k] - after[k]).max() > 1e-12 for k in before)
        assert moved

    def test_memory_nonzero_for_active_nodes(self, tiny_stream):
        trainer = CPDGPreTrainer.from_backbone("tgn", tiny_stream.num_nodes,
                                               small_config())
        result = trainer.pretrain(tiny_stream)
        active = tiny_stream.active_nodes()
        norms = np.abs(result.memory_state).sum(axis=1)
        # All but the final batch's nodes have flushed messages; require
        # that a clear majority of active nodes hold state.
        assert (norms[active] > 0).mean() > 0.5

    def test_checkpoints_evolve_over_training(self, tiny_stream):
        cfg = small_config(epochs=3, num_checkpoints=3)
        trainer = CPDGPreTrainer.from_backbone("tgn", tiny_stream.num_nodes, cfg)
        result = trainer.pretrain(tiny_stream)
        first, last = result.checkpoints[0], result.checkpoints[-1]
        assert np.abs(first - last).max() > 0

    def test_pretext_loss_decreases_over_epochs(self, tiny_stream):
        cfg = small_config(epochs=5, learning_rate=3e-3)
        trainer = CPDGPreTrainer.from_backbone("tgn", tiny_stream.num_nodes, cfg)
        result = trainer.pretrain(tiny_stream)
        history = np.array(result.loss_history)
        batches = len(history) // 5
        first_epoch = history[:batches, 2].mean()
        last_epoch = history[-batches:, 2].mean()
        assert last_epoch < first_epoch

    def test_custom_encoder_accepted(self, tiny_stream, rng):
        encoder = make_encoder("dyrep", tiny_stream.num_nodes, rng,
                               memory_dim=8, embed_dim=8, time_dim=4,
                               edge_dim=4, n_neighbors=3)
        trainer = CPDGPreTrainer(encoder, small_config())
        result = trainer.pretrain(tiny_stream)
        assert result.memory_state.shape == (tiny_stream.num_nodes, 8)

    def test_invalid_config_rejected(self, tiny_stream, rng):
        encoder = make_encoder("tgn", tiny_stream.num_nodes, rng)
        with pytest.raises(ValueError):
            CPDGPreTrainer(encoder, CPDGConfig(beta=2.0))
