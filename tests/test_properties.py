"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (chronological_probability,
                        reverse_chronological_probability)
from repro.graph import EventStream, NeighborFinder
from repro.nn import Tensor
from repro.nn import functional as F
from repro.tasks import average_precision_score, roc_auc_score

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

small_floats = st.floats(min_value=-50.0, max_value=50.0,
                         allow_nan=False, allow_infinity=False)


@st.composite
def event_streams(draw):
    n_events = draw(st.integers(min_value=1, max_value=60))
    num_nodes = draw(st.integers(min_value=2, max_value=15))
    src = draw(hnp.arrays(np.int64, n_events,
                          elements=st.integers(0, num_nodes - 1)))
    dst = draw(hnp.arrays(np.int64, n_events,
                          elements=st.integers(0, num_nodes - 1)))
    ts = draw(hnp.arrays(np.float64, n_events,
                         elements=st.floats(0.0, 1000.0, allow_nan=False)))
    return EventStream(src=src, dst=dst, timestamps=ts, num_nodes=num_nodes)


@st.composite
def matrices(draw, max_rows=8, max_cols=8):
    rows = draw(st.integers(1, max_rows))
    cols = draw(st.integers(1, max_cols))
    return draw(hnp.arrays(np.float64, (rows, cols), elements=small_floats))


# ----------------------------------------------------------------------
# EventStream invariants
# ----------------------------------------------------------------------

@given(event_streams())
@settings(max_examples=50, deadline=None)
def test_stream_always_chronological(stream):
    assert (np.diff(stream.timestamps) >= 0).all()


@given(event_streams(), st.floats(0.0, 1000.0, allow_nan=False))
@settings(max_examples=50, deadline=None)
def test_slice_time_partitions_events(stream, cut):
    before = stream.slice_time(t_end=cut)
    after = stream.slice_time(t_start=cut)
    assert before.num_events + after.num_events == stream.num_events
    if before.num_events:
        assert before.t_max < cut
    if after.num_events:
        assert after.t_min >= cut


@given(event_streams())
@settings(max_examples=30, deadline=None)
def test_split_fraction_conserves_events(stream):
    parts = stream.split_fraction([0.6, 0.2, 0.1, 0.1])
    assert sum(p.num_events for p in parts) == stream.num_events


@given(event_streams())
@settings(max_examples=30, deadline=None)
def test_remap_preserves_event_structure(stream):
    compact, old_ids = stream.remap_nodes()
    assert compact.num_events == stream.num_events
    np.testing.assert_array_equal(old_ids[compact.src], stream.src)
    np.testing.assert_array_equal(old_ids[compact.dst], stream.dst)


# ----------------------------------------------------------------------
# NeighborFinder invariants
# ----------------------------------------------------------------------

@given(event_streams(), st.floats(0.0, 1000.0, allow_nan=False))
@settings(max_examples=30, deadline=None)
def test_neighbor_counts_match_event_counts(stream, t):
    finder = NeighborFinder(stream)
    total = sum(finder.degree(n, t) for n in range(stream.num_nodes))
    expected = 2 * int((stream.timestamps < t).sum())
    assert total == expected


@given(event_streams(), st.integers(0, 14), st.floats(0.0, 1000.0,
                                                      allow_nan=False))
@settings(max_examples=50, deadline=None)
def test_before_returns_only_past_events(stream, node, t):
    node = node % stream.num_nodes
    finder = NeighborFinder(stream)
    _, times, _ = finder.before(node, t)
    assert (times < t).all()
    assert (np.diff(times) >= 0).all()


@given(event_streams(), st.integers(1, 5))
@settings(max_examples=30, deadline=None)
def test_most_recent_is_suffix_of_before(stream, count):
    finder = NeighborFinder(stream)
    t = stream.t_max + 1.0
    for node in range(stream.num_nodes):
        all_n, all_t, _ = finder.before(node, t)
        recent_n, recent_t, _ = finder.most_recent(node, t, count)
        assert len(recent_n) == min(count, len(all_n))
        np.testing.assert_array_equal(recent_n, all_n[len(all_n) - len(recent_n):])


# ----------------------------------------------------------------------
# Sampling probability invariants (paper Eq. 6-8)
# ----------------------------------------------------------------------

@given(hnp.arrays(np.float64, st.integers(1, 30),
                  elements=st.floats(0.0, 99.0, allow_nan=False)),
       st.floats(100.0, 200.0), st.floats(0.05, 5.0))
@settings(max_examples=100, deadline=None)
def test_probabilities_are_distributions(times, t, tau):
    for fn in (chronological_probability, reverse_chronological_probability):
        probs = fn(times, t, tau)
        assert probs.shape == times.shape
        assert (probs >= 0).all()
        np.testing.assert_allclose(probs.sum(), 1.0, rtol=1e-9)


@given(hnp.arrays(np.float64, st.integers(2, 30),
                  elements=st.floats(0.0, 99.0, allow_nan=False)),
       st.floats(100.0, 200.0), st.floats(0.05, 5.0))
@settings(max_examples=100, deadline=None)
def test_chronological_monotone_in_event_time(times, t, tau):
    probs = chronological_probability(times, t, tau)
    order = np.argsort(times)
    sorted_probs = probs[order]
    assert (np.diff(sorted_probs) >= -1e-12).all()


# ----------------------------------------------------------------------
# Autograd / functional invariants
# ----------------------------------------------------------------------

@given(matrices())
@settings(max_examples=50, deadline=None)
def test_softmax_rows_are_distributions(data):
    out = F.softmax(Tensor(data)).data
    assert (out >= 0).all()
    np.testing.assert_allclose(out.sum(axis=-1), np.ones(data.shape[0]),
                               rtol=1e-9)


@given(matrices(), matrices())
@settings(max_examples=50, deadline=None)
def test_addition_commutes(a, b):
    if a.shape != b.shape:
        return
    left = (Tensor(a) + Tensor(b)).data
    right = (Tensor(b) + Tensor(a)).data
    np.testing.assert_allclose(left, right)


@given(matrices())
@settings(max_examples=50, deadline=None)
def test_sum_grad_is_ones(data):
    t = Tensor(data, requires_grad=True)
    t.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(data))


@given(matrices())
@settings(max_examples=50, deadline=None)
def test_l2_normalize_idempotent(data):
    x = Tensor(np.abs(data) + 0.1)  # keep rows away from the zero vector
    once = F.l2_normalize(x).data
    twice = F.l2_normalize(Tensor(once)).data
    np.testing.assert_allclose(once, twice, atol=1e-8)


@given(matrices(max_rows=6, max_cols=6))
@settings(max_examples=50, deadline=None)
def test_euclidean_distance_symmetry_and_identity(data):
    a = Tensor(data)
    b = Tensor(data[::-1].copy())
    d_ab = F.euclidean_distance(a, b).data
    d_ba = F.euclidean_distance(b, a).data
    np.testing.assert_allclose(d_ab, d_ba, rtol=1e-9)
    d_aa = F.euclidean_distance(a, a).data
    np.testing.assert_allclose(d_aa, np.zeros(len(d_aa)), atol=1e-5)


# ----------------------------------------------------------------------
# Metric invariants
# ----------------------------------------------------------------------

@given(st.integers(2, 200), st.integers(0, 10_000))
@settings(max_examples=50, deadline=None)
def test_auc_invariant_to_monotone_transform(n, seed):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=n)
    if labels.min() == labels.max():
        labels[0] = 1 - labels[0]
    scores = rng.random(n)
    raw = roc_auc_score(labels, scores)
    transformed = roc_auc_score(labels, np.exp(3.0 * scores))
    assert raw == transformed


@given(st.integers(2, 200), st.integers(0, 10_000))
@settings(max_examples=50, deadline=None)
def test_auc_complement_symmetry(n, seed):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=n)
    if labels.min() == labels.max():
        labels[0] = 1 - labels[0]
    scores = rng.random(n)
    a = roc_auc_score(labels, scores)
    b = roc_auc_score(1 - labels, -scores)
    np.testing.assert_allclose(a, b, atol=1e-12)


@given(st.integers(2, 100), st.integers(0, 10_000))
@settings(max_examples=50, deadline=None)
def test_average_precision_bounded_by_prevalence_floor(n, seed):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=n)
    if labels.sum() == 0:
        labels[0] = 1
    scores = rng.random(n)
    ap = average_precision_score(labels, scores)
    assert 0.0 < ap <= 1.0
