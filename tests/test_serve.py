"""The `repro.serve` subsystem: dynamic adjacency, replay-equivalent
ingestion, the query planner/cache, the HTTP frontend, and artifact v2.

The load-bearing guarantees:

* every `DynamicNeighborFinder` query is bit-identical to a
  `NeighborFinder` rebuilt from scratch over the concatenated events —
  before *and* after compaction — so the PR-2 samplers and PR-4
  `produce_batch` run unchanged on a live graph;
* `EmbeddingService.embed` after `ingest` is bit-identical to an offline
  encoder that replayed the concatenated stream (dense and sparse memory
  engines, all three backbones);
* format-v2 artifacts round-trip the fine-tuned bundle and still read
  v1 files.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.api import (ARTIFACT_FORMAT_VERSION, FineTunedBundle, Pipeline,
                       PretrainArtifact, RunConfig, stream_fingerprint)
from repro.api.config import DataConfig
from repro.core import CPDGConfig
from repro.core.pretrainer import CPDGPreTrainer
from repro.core.samplers import EpsilonDFSSampler, EtaBFSSampler
from repro.dgnn.encoder import make_encoder
from repro.graph.batching import EventBatch
from repro.graph.events import EventStream
from repro.graph.neighbor_finder import NeighborFinder
from repro.nn.autograd import default_dtype, no_grad
from repro.serve import (DynamicNeighborFinder, EmbeddingLRU,
                         EmbeddingService, HttpClient, IngestError,
                         LocalClient, MicroBatchPlanner, ServeError,
                         start_http_server)
from repro.stream import ProducerSpec, SamplingContext, produce_batch
from repro.tasks import FineTuneConfig
from repro.tasks.ranking import top_k_from_scores

NUM_NODES = 60
PRETRAIN_EVENTS = 260
SUFFIX_EVENTS = 120


def make_split_stream(seed: int = 3, edge_dim: int = 0):
    """A bipartite stream split into (full, pretrain prefix, live suffix)."""
    rng = np.random.default_rng(seed)
    total = PRETRAIN_EVENTS + SUFFIX_EVENTS
    feats = (rng.normal(size=(total, edge_dim)) if edge_dim else None)
    full = EventStream(
        src=rng.integers(0, NUM_NODES // 2, total),
        dst=rng.integers(NUM_NODES // 2, NUM_NODES, total),
        timestamps=np.sort(rng.uniform(0.0, 100.0, total)),
        num_nodes=NUM_NODES, edge_feats=feats, name="serve-test")
    return (full, full.slice_index(0, PRETRAIN_EVENTS),
            full.slice_index(PRETRAIN_EVENTS, total))


def tiny_config(backbone: str = "tgn", engine: str = "sparse",
                edge_dim: int = 0) -> RunConfig:
    return RunConfig(backbone=backbone, pretrain=CPDGConfig(
        epochs=1, batch_size=90, memory_dim=8, embed_dim=8, time_dim=4,
        edge_dim=edge_dim, n_neighbors=5, num_checkpoints=2, seed=0,
        memory_engine=engine))


def pretrain_artifact(stream: EventStream, config: RunConfig
                      ) -> PretrainArtifact:
    trainer = CPDGPreTrainer.from_backbone(
        config.backbone, stream.num_nodes, config.pretrain, delta_scale=1.0)
    result = trainer.pretrain(stream)
    return PretrainArtifact(
        result=result, run_config=config, num_nodes=stream.num_nodes,
        delta_scale=1.0, dataset_fingerprint=stream_fingerprint(stream),
        dataset_name=stream.name)


def offline_replay_embed(artifact: PretrainArtifact, full: EventStream,
                         suffix: EventStream, nodes, ts,
                         block: int = 40) -> np.ndarray:
    """The reference: replay the suffix offline over the full stream."""
    config = artifact.run_config.pretrain
    start_id = full.num_events - suffix.num_events
    with default_dtype(config.np_dtype):
        encoder = make_encoder(
            artifact.backbone, artifact.num_nodes,
            np.random.default_rng(config.seed),
            memory_dim=config.memory_dim, embed_dim=config.embed_dim,
            time_dim=config.time_dim, edge_dim=config.edge_dim,
            n_neighbors=config.n_neighbors, n_layers=config.n_layers,
            delta_scale=artifact.delta_scale,
            memory_engine=config.memory_engine, dtype=config.np_dtype)
        encoder.load_state_dict(artifact.result.encoder_state)
        encoder.load_memory(artifact.result.memory_state,
                            artifact.result.last_update)
        encoder.attach(full)
        with no_grad():
            for lo in range(0, suffix.num_events, block):
                hi = min(lo + block, suffix.num_events)
                batch = EventBatch(
                    src=suffix.src[lo:hi], dst=suffix.dst[lo:hi],
                    timestamps=suffix.timestamps[lo:hi],
                    neg_dst=np.empty(0, dtype=np.int64),
                    event_ids=np.arange(start_id + lo, start_id + hi))
                encoder.flush_messages()
                encoder.register_batch(batch)
                encoder.end_batch()
            z = encoder.compute_embedding(nodes, ts)
    return np.asarray(z.data)


# ======================================================================
# DynamicNeighborFinder: delta vs compacted vs rebuilt-from-scratch
# ======================================================================

class TestDynamicNeighborFinder:

    def _grown(self, seed: int, chunk: int, threshold=None):
        full, pre, suffix = make_split_stream(seed)
        dyn = DynamicNeighborFinder(pre, compaction_threshold=threshold)
        for lo in range(0, suffix.num_events, chunk):
            hi = min(lo + chunk, suffix.num_events)
            dyn.append(suffix.src[lo:hi], suffix.dst[lo:hi],
                       suffix.timestamps[lo:hi])
        return NeighborFinder(full), dyn

    def _assert_equivalent(self, ref: NeighborFinder,
                           dyn: DynamicNeighborFinder, seed: int) -> None:
        rng = np.random.default_rng(seed)
        nodes = rng.integers(0, NUM_NODES, 300)
        ts = rng.uniform(0.0, 130.0, 300)
        r_starts, r_ends = ref.batch_before(nodes, ts)
        d_starts, d_ends = dyn.batch_before(nodes, ts)
        np.testing.assert_array_equal(r_starts, d_starts)
        np.testing.assert_array_equal(r_ends, d_ends)
        np.testing.assert_array_equal(np.asarray(ref.indptr),
                                      np.asarray(dyn.indptr))
        # The flat-index contract: dereferencing the cut range through the
        # virtual columns yields the rebuilt finder's slices.
        flat = np.concatenate([np.arange(a, b)
                               for a, b in zip(r_starts, r_ends)])
        for name in ("neighbors", "times", "event_ids"):
            np.testing.assert_array_equal(
                np.asarray(getattr(ref, name))[flat],
                getattr(dyn, name)[flat], err_msg=name)
        for count in (1, 4, 9):
            expected = ref.batch_most_recent(nodes, ts, count)
            actual = dyn.batch_most_recent(nodes, ts, count)
            for exp, act in zip(expected, actual):
                np.testing.assert_array_equal(exp, act)
        expected = ref.batch_sample_uniform(nodes, ts, 6,
                                            np.random.default_rng(99))
        actual = dyn.batch_sample_uniform(nodes, ts, 6,
                                          np.random.default_rng(99))
        for exp, act in zip(expected, actual):
            np.testing.assert_array_equal(exp, act)
        for cut in (0, PRETRAIN_EVENTS // 2, PRETRAIN_EVENTS,
                    PRETRAIN_EVENTS + SUFFIX_EVENTS):
            np.testing.assert_array_equal(
                ref.batch_last_update(nodes, cut),
                dyn.batch_last_update(nodes, cut))
        base = np.random.default_rng(1).uniform(0, 5, NUM_NODES)
        np.testing.assert_array_equal(
            ref.batch_last_update(nodes, PRETRAIN_EVENTS + 10, base=base),
            dyn.batch_last_update(nodes, PRETRAIN_EVENTS + 10, base=base))
        for node in range(0, NUM_NODES, 11):
            for t in (0.0, 50.0, 99.0, 200.0):
                for exp, act in zip(ref.before(node, t), dyn.before(node, t)):
                    np.testing.assert_array_equal(exp, act)
                for exp, act in zip(ref.most_recent(node, t, 3),
                                    dyn.most_recent(node, t, 3)):
                    np.testing.assert_array_equal(exp, act)
                assert ref.degree(node, t) == dyn.degree(node, t)

    @pytest.mark.parametrize("seed", [0, 7, 21])
    @pytest.mark.parametrize("chunk", [1, 17, SUFFIX_EVENTS])
    def test_delta_queries_match_rebuilt_finder(self, seed, chunk):
        ref, dyn = self._grown(seed, chunk, threshold=None)
        assert dyn.delta_events == SUFFIX_EVENTS  # never compacted
        self._assert_equivalent(ref, dyn, seed)

    @pytest.mark.parametrize("seed", [0, 7])
    def test_compacted_queries_match_rebuilt_finder(self, seed):
        ref, dyn = self._grown(seed, 17, threshold=None)
        dyn.compact()
        assert dyn.delta_events == 0 and dyn.compactions == 1
        self._assert_equivalent(ref, dyn, seed)
        for name in ("indptr", "neighbors", "times", "event_ids"):
            np.testing.assert_array_equal(np.asarray(getattr(ref, name)),
                                          np.asarray(getattr(dyn, name)))

    def test_auto_compaction_threshold(self):
        _, dyn = self._grown(0, 17, threshold=50)
        assert dyn.compactions >= 1
        assert dyn.delta_events < 50

    def test_samplers_run_unchanged_on_live_graph(self):
        ref, dyn = self._grown(5, 13, threshold=None)
        rng = np.random.default_rng(5)
        roots = rng.integers(0, NUM_NODES, 40)
        ts = rng.uniform(10.0, 130.0, 40)
        for kwargs in (dict(probability="chronological"),
                       dict(probability="reverse")):
            exp = EtaBFSSampler(ref, 4, 2, **kwargs).sample_batch(
                roots, ts, rng=np.random.default_rng(11))
            act = EtaBFSSampler(dyn, 4, 2, **kwargs).sample_batch(
                roots, ts, rng=np.random.default_rng(11))
            np.testing.assert_array_equal(exp.nodes, act.nodes)
            np.testing.assert_array_equal(exp.indptr, act.indptr)
        exp = EpsilonDFSSampler(ref, 4, 2).sample_batch(roots, ts)
        act = EpsilonDFSSampler(dyn, 4, 2).sample_batch(roots, ts)
        np.testing.assert_array_equal(exp.nodes, act.nodes)
        np.testing.assert_array_equal(exp.indptr, act.indptr)

    def test_produce_batch_runs_unchanged_on_live_graph(self):
        full, _, _ = make_split_stream(4)
        ref, dyn = self._grown(4, 29, threshold=None)
        spec = ProducerSpec(batch_size=50, seed=0, sample_temporal=True,
                            sample_structural=True, eta=4, epsilon=4,
                            depth=2, compute_messages=True, stream=full)
        items = list(spec.make_plan(full.num_events))
        ctx_ref = SamplingContext(spec, stream=full, finder=ref)
        ctx_dyn = SamplingContext(spec, stream=full, finder=dyn)
        for item in items[:3]:
            expected = produce_batch(ctx_ref, item)
            actual = produce_batch(ctx_dyn, item)
            np.testing.assert_array_equal(expected.batch.neg_dst,
                                          actual.batch.neg_dst)
            for attr in ("temporal_pos", "temporal_neg",
                         "structural_pos", "structural_neg"):
                exp, act = getattr(expected, attr), getattr(actual, attr)
                np.testing.assert_array_equal(exp.nodes, act.nodes)
                np.testing.assert_array_equal(exp.indptr, act.indptr)
            np.testing.assert_array_equal(expected.messages.delta_t,
                                          actual.messages.delta_t)

    def test_append_validation(self):
        _, pre, _ = make_split_stream(0)
        dyn = DynamicNeighborFinder(pre)
        t_next = pre.t_max + 1.0
        with pytest.raises(IngestError):
            dyn.append([1], [NUM_NODES], [t_next])        # out of node space
        with pytest.raises(IngestError):
            dyn.append([1], [2], [pre.t_max - 5.0])       # time regression
        with pytest.raises(IngestError):
            dyn.append([1, 2], [3, 4], [t_next + 1, t_next])  # unsorted
        with pytest.raises(IngestError):
            dyn.append([1], [2], [t_next], event_ids=[999])   # id gap
        assert dyn.num_events == PRETRAIN_EVENTS

    def test_export_compacts_first(self, tmp_path):
        ref, dyn = self._grown(0, 17, threshold=None)
        dyn.export(str(tmp_path / "shards"))
        reopened = NeighborFinder.open(str(tmp_path / "shards"), mmap=False)
        for name in ("indptr", "neighbors", "times", "event_ids"):
            np.testing.assert_array_equal(np.asarray(getattr(ref, name)),
                                          np.asarray(getattr(reopened, name)))


# ======================================================================
# EmbeddingService: frozen-artifact queries + replay equivalence
# ======================================================================

class TestEmbeddingService:

    @pytest.mark.parametrize("backbone", ["tgn", "jodie", "dyrep"])
    def test_embed_matches_offline_encoder(self, backbone):
        """No ingestion: served rows == a frozen offline encoder's."""
        _, pre, _ = make_split_stream(3)
        artifact = pretrain_artifact(pre, tiny_config(backbone))
        service = EmbeddingService.from_artifact(artifact, history=pre)
        nodes = np.arange(0, NUM_NODES, 4)
        ts = np.full(len(nodes), pre.t_max + 1.0)
        served = service.embed(nodes, ts)
        config = artifact.run_config.pretrain
        with default_dtype(config.np_dtype):
            encoder = make_encoder(
                backbone, NUM_NODES, np.random.default_rng(config.seed),
                memory_dim=config.memory_dim, embed_dim=config.embed_dim,
                time_dim=config.time_dim, edge_dim=config.edge_dim,
                n_neighbors=config.n_neighbors, n_layers=config.n_layers,
                delta_scale=1.0, memory_engine=config.memory_engine,
                dtype=config.np_dtype)
            encoder.load_state_dict(artifact.result.encoder_state)
            encoder.load_memory(artifact.result.memory_state,
                                artifact.result.last_update)
            encoder.attach(pre)
            with no_grad():
                offline = np.asarray(
                    encoder.compute_embedding(nodes, ts).data)
        np.testing.assert_array_equal(served, offline)

    @pytest.mark.parametrize("backbone", ["tgn", "jodie", "dyrep"])
    @pytest.mark.parametrize("engine", ["sparse", "dense"])
    def test_ingest_replay_equivalence(self, backbone, engine):
        """The acceptance criterion: serve-time ingestion == offline
        replay over the concatenated stream, bit for bit."""
        full, pre, suffix = make_split_stream(3)
        artifact = pretrain_artifact(pre, tiny_config(backbone, engine))
        service = EmbeddingService.from_artifact(
            artifact, history=pre, compaction_threshold=50)
        service.ingest(suffix, block_size=40)
        nodes = np.arange(NUM_NODES)
        ts = np.full(NUM_NODES, full.t_max + 5.0)
        served = service.embed(nodes, ts)
        offline = offline_replay_embed(artifact, full, suffix, nodes, ts)
        np.testing.assert_array_equal(served, offline)

    def test_ingest_replay_equivalence_with_edge_features(self):
        full, pre, suffix = make_split_stream(9, edge_dim=3)
        artifact = pretrain_artifact(pre, tiny_config("tgn", edge_dim=3))
        service = EmbeddingService.from_artifact(artifact, history=pre)
        service.ingest(suffix, block_size=30)
        nodes = np.arange(0, NUM_NODES, 2)
        ts = np.full(len(nodes), full.t_max + 1.0)
        offline = offline_replay_embed(artifact, full, suffix, nodes, ts,
                                       block=30)
        np.testing.assert_array_equal(service.embed(nodes, ts), offline)

    def test_compiled_serving_builds_no_graph_nodes(self):
        """Regression: the serve embed path runs fully under no_grad and
        replays with zero autograd-node construction after the trace."""
        from repro.nn.autograd import graph_nodes_created
        _, pre, suffix = make_split_stream(3)
        artifact = pretrain_artifact(pre, tiny_config("tgn"))
        service = EmbeddingService.from_artifact(artifact, history=pre)
        nodes = np.arange(0, NUM_NODES, 4)
        ts = np.full(len(nodes), pre.t_max + 1.0)
        eager_service = EmbeddingService.from_artifact(
            artifact, history=pre, compile=False)
        first = service.embed(nodes, ts)               # traces once
        np.testing.assert_array_equal(first, eager_service.embed(nodes, ts))
        eager_pre_ingest = eager_service.embed(nodes, ts + 1.0)
        before = graph_nodes_created()
        served = service.embed(nodes, ts + 1.0)        # replays
        service.ingest(suffix.slice_index(0, 40))
        served2 = service.embed(nodes, ts + 2.0)
        assert graph_nodes_created() == before
        np.testing.assert_array_equal(served, eager_pre_ingest)
        eager_service.ingest(suffix.slice_index(0, 40))
        np.testing.assert_array_equal(
            served2, eager_service.embed(nodes, ts + 2.0))
        stats = service.stats()["compile"]
        assert stats["replays"] >= 1 and stats["mismatches"] == 0
        assert stats["backend"]["active"] == "numpy"
        assert service.stats()["backend"] == "numpy"

    def test_featured_service_requires_edge_feats_on_ingest(self):
        _, pre, suffix = make_split_stream(9, edge_dim=3)
        artifact = pretrain_artifact(pre, tiny_config("tgn", edge_dim=3))
        service = EmbeddingService.from_artifact(artifact, history=pre)
        with pytest.raises(IngestError):
            service.ingest(src=suffix.src[:2], dst=suffix.dst[:2],
                           timestamps=suffix.timestamps[:2])

    def test_fingerprint_mismatch_rejected(self):
        _, pre, suffix = make_split_stream(3)
        artifact = pretrain_artifact(pre, tiny_config())
        with pytest.raises(ServeError):
            EmbeddingService.from_artifact(artifact, history=suffix)
        service = EmbeddingService.from_artifact(
            artifact, history=suffix, verify_fingerprint=False)
        assert service.stats()["graph"]["num_events"] == suffix.num_events

    def test_score_links_dot_product_and_top_k(self):
        _, pre, _ = make_split_stream(3)
        artifact = pretrain_artifact(pre, tiny_config())
        service = EmbeddingService.from_artifact(artifact, history=pre)
        t = pre.t_max + 1.0
        src = np.array([0, 1, 2])
        dst = np.array([40, 41, 42])
        scores = service.score_links(src, dst, t)
        rows = service.embed(np.concatenate([src, dst]), t)
        np.testing.assert_allclose(
            scores, np.sum(rows[:3] * rows[3:], axis=1), rtol=1e-6)
        ids, top_scores = service.top_k(0, t, 5)
        assert len(ids) == 5
        assert np.all(np.diff(top_scores) <= 0)
        # Candidates default to observed destinations (bipartite upper half).
        assert set(ids.tolist()) <= set(np.unique(pre.dst).tolist())
        exhaustive = service.score_links(np.zeros(len(np.unique(pre.dst)),
                                                  dtype=np.int64),
                                         np.unique(pre.dst), t)
        assert top_scores[0] == pytest.approx(exhaustive.max())

    def test_cache_hits_and_touched_row_invalidation(self):
        """Per-touched-row LRU invalidation (exact for JODIE, whose
        embedding depends only on the node's own row + clock)."""
        _, pre, suffix = make_split_stream(3)
        artifact = pretrain_artifact(pre, tiny_config("jodie"))
        service = EmbeddingService.from_artifact(artifact, history=pre)
        t = pre.t_max + 1.0
        nodes = np.arange(0, 10)
        first = service.embed(nodes, t)
        assert service.planner.stats.cache_misses == 10
        second = service.embed(nodes, t)
        np.testing.assert_array_equal(first, second)
        assert service.planner.stats.cache_hits == 10

        touched_src = int(suffix.src[0])
        touched_dst = int(suffix.dst[0])
        service.ingest(src=[touched_src], dst=[touched_dst],
                       timestamps=[suffix.timestamps[0]])
        cache = service.planner.cache
        assert all(key[0] != touched_src for key in cache._rows)
        untouched = [n for n in nodes if n not in (touched_src, touched_dst)]
        assert any(key[0] == untouched[0] for key in cache._rows)

        # Recomputation after invalidation equals a cache-less replica.
        refreshed = service.embed([touched_src], t + 1.0)[0]
        bare = EmbeddingService.from_artifact(artifact, history=pre,
                                              cache_capacity=0)
        bare.ingest(src=[touched_src], dst=[touched_dst],
                    timestamps=[suffix.timestamps[0]])
        np.testing.assert_array_equal(
            refreshed, bare.embed([touched_src], t + 1.0)[0])

    def test_query_validation(self):
        _, pre, _ = make_split_stream(3)
        artifact = pretrain_artifact(pre, tiny_config())
        service = EmbeddingService.from_artifact(artifact, history=pre)
        with pytest.raises(ServeError):
            service.embed([NUM_NODES + 3], 10.0)
        with pytest.raises(ServeError):
            service.score_links([1, 2], [3], 10.0)
        with pytest.raises(ServeError):
            service.ingest()


# ======================================================================
# Planner / cache units
# ======================================================================

class TestPlanner:

    def test_lru_eviction_and_node_index(self):
        cache = EmbeddingLRU(capacity=3)
        for i in range(4):
            cache.put((i, 0), np.full(2, float(i)))
        assert len(cache) == 3
        assert cache.get((0, 0)) is None          # evicted (oldest)
        assert cache.get((3, 0))[0] == 3.0
        cache.put((3, 1), np.full(2, 9.0))
        assert cache.invalidate_nodes(np.array([3])) == 2
        assert cache.get((3, 0)) is None and cache.get((3, 1)) is None

    def test_planner_dedup_single_pass(self):
        calls = []

        def compute(nodes, ts):
            calls.append(len(nodes))
            return np.stack([np.full(3, float(n)) for n in nodes])

        planner = MicroBatchPlanner(compute, cache=EmbeddingLRU(16))
        nodes = np.array([5, 5, 7, 5], dtype=np.int64)
        rows = planner.embed(nodes, np.zeros(4))
        assert calls == [2]                        # deduped to {5, 7}
        np.testing.assert_array_equal(rows[:, 0], [5.0, 5.0, 7.0, 5.0])
        planner.embed(nodes, np.zeros(4))
        assert calls == [2]                        # all served from cache
        assert planner.stats.cache_hits >= 2

    def test_planner_coalesces_concurrent_requests(self):
        import threading

        passes = []

        def compute(nodes, ts):
            passes.append(len(nodes))
            return np.stack([np.full(2, float(n)) for n in nodes])

        planner = MicroBatchPlanner(compute, cache=None, window=0.05)
        results = {}

        def query(i):
            results[i] = planner.embed(np.array([i]), np.array([0.0]))

        threads = [threading.Thread(target=query, args=(i,))
                   for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for i in range(6):
            assert results[i][0, 0] == float(i)
        # Fewer passes than requests — at least some coalescing happened.
        assert len(passes) < 6
        assert planner.stats.coalesced > 0

    def test_top_k_from_scores(self):
        ids, scores = top_k_from_scores(np.array([4, 9, 2, 7]),
                                        np.array([0.1, 0.9, 0.9, 0.5]), 3)
        np.testing.assert_array_equal(ids, [2, 9, 7])   # tie -> lower id
        np.testing.assert_array_equal(scores, [0.9, 0.9, 0.5])
        ids, _ = top_k_from_scores(np.array([1, 2]), np.array([1.0, 2.0]), 10)
        np.testing.assert_array_equal(ids, [2, 1])


# ======================================================================
# HTTP frontend
# ======================================================================

class TestHttpFrontend:

    @pytest.fixture()
    def service(self):
        _, pre, _ = make_split_stream(3)
        artifact = pretrain_artifact(pre, tiny_config())
        return EmbeddingService.from_artifact(artifact, history=pre)

    def test_http_round_trip_matches_local_client(self, service):
        local = LocalClient(service)
        server, _ = start_http_server(service)
        try:
            client = HttpClient(f"http://127.0.0.1:"
                                f"{server.server_address[1]}")
            assert client.health() == {"status": "ok"}
            t = 150.0
            assert client.embed([1, 2, 3], t) == local.embed([1, 2, 3], t)
            assert client.score([0, 1], [40, 41], t) \
                == local.score([0, 1], [40, 41], t)
            assert client.topk(0, t, 4) == local.topk(0, t, 4)
            assert client.ingest([1], [40], [t + 1.0]) == {"ingested": 1}
            # Post-ingest queries reflect the new event on both paths.
            assert client.embed([1], t + 2.0) == local.embed([1], t + 2.0)
            stats = client.stats()
            assert stats["graph"]["num_events"] == PRETRAIN_EVENTS + 1
            assert stats["ingest"]["events"] == 1
        finally:
            server.shutdown()

    def test_http_error_handling(self, service):
        import urllib.error
        import urllib.request

        server, _ = start_http_server(service)
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            request = urllib.request.Request(
                f"{base}/embed", data=json.dumps({"nodes": [1]}).encode(),
                headers={"Content-Type": "application/json"})
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 400       # missing "ts"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{base}/nope", timeout=10)
            assert excinfo.value.code == 404
        finally:
            server.shutdown()


# ======================================================================
# Artifact format v2 + pipeline export
# ======================================================================

class TestArtifactV2:

    def _artifact(self):
        _, pre, _ = make_split_stream(3)
        return pretrain_artifact(pre, tiny_config()), pre

    def test_v2_round_trip_without_bundle(self, tmp_path):
        artifact, _ = self._artifact()
        path = str(tmp_path / "plain.npz")
        artifact.save(path)
        loaded = PretrainArtifact.load(path)
        assert loaded.format_version == ARTIFACT_FORMAT_VERSION == 2
        assert loaded.finetuned is None
        np.testing.assert_array_equal(loaded.result.memory_state,
                                      artifact.result.memory_state)

    def test_v2_round_trip_with_bundle(self, tmp_path):
        artifact, _ = self._artifact()
        artifact.finetuned = FineTunedBundle(
            task="link_prediction", strategy="full",
            encoder_state={"w": np.arange(4.0)},
            head_state={"net.0.weight": np.eye(2)},
            eie_state=None,
            history=[{"epoch": 0, "val_auc": 0.7}])
        path = str(tmp_path / "bundled.npz")
        artifact.save(path)
        loaded = PretrainArtifact.load(path)
        bundle = loaded.finetuned
        assert bundle is not None
        assert (bundle.task, bundle.strategy) == ("link_prediction", "full")
        assert bundle.eie_state is None
        np.testing.assert_array_equal(bundle.encoder_state["w"],
                                      np.arange(4.0))
        np.testing.assert_array_equal(bundle.head_state["net.0.weight"],
                                      np.eye(2))
        assert bundle.history == [{"epoch": 0, "val_auc": 0.7}]
        assert loaded.describe()["finetuned"]["strategy"] == "full"

    def test_v1_file_still_loads(self, tmp_path):
        artifact, _ = self._artifact()
        v2_path = tmp_path / "v2.npz"
        artifact.save(str(v2_path))
        with np.load(str(v2_path)) as payload:
            arrays = {key: payload[key] for key in payload.files}
        meta = json.loads(str(arrays.pop("__meta__")))
        meta["format_version"] = 1
        meta.pop("finetuned", None)
        arrays["__meta__"] = np.array(json.dumps(meta))
        v1_path = str(tmp_path / "v1.npz")
        np.savez_compressed(v1_path, **arrays)
        loaded = PretrainArtifact.load(v1_path)
        assert loaded.format_version == 1
        assert loaded.finetuned is None
        np.testing.assert_array_equal(loaded.result.memory_state,
                                      artifact.result.memory_state)
        # Re-saving a v1 artifact upgrades it to the current format.
        upgraded = str(tmp_path / "upgraded.npz")
        loaded.save(upgraded)
        assert PretrainArtifact.load(upgraded).format_version == 2

    def test_loss_curves_accessor(self):
        artifact, _ = self._artifact()
        curves = artifact.loss_curves()
        assert set(curves) == {"L_eta", "L_eps", "L_tlp"}
        assert len(curves["L_tlp"]) == len(artifact.result.loss_history)

    def test_fingerprint_distinguishes_edge_features(self):
        _, plain, _ = make_split_stream(3)
        _, featured, _ = make_split_stream(3, edge_dim=2)
        assert stream_fingerprint(plain) != stream_fingerprint(featured)
        featured2 = dataclasses.replace(
            featured, edge_feats=featured.edge_feats + 1.0)
        assert stream_fingerprint(featured) != stream_fingerprint(featured2)
        labeled = dataclasses.replace(
            plain, labels=np.zeros(plain.num_events))
        assert stream_fingerprint(plain) != stream_fingerprint(labeled)


def _quick_run_config() -> RunConfig:
    return RunConfig(
        backbone="tgn", task="link_prediction", strategy="eie-gru",
        data=DataConfig(dataset="meituan", num_users=20, num_items=15,
                        events_main=400),
        pretrain=CPDGConfig(epochs=1, batch_size=100, memory_dim=8,
                            embed_dim=8, time_dim=4, eta=4, epsilon=4,
                            num_checkpoints=3, seed=0),
        finetune=FineTuneConfig(epochs=1, batch_size=100, seed=0))


class TestPipelineServingPath:

    @pytest.fixture(scope="class")
    def exported(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("export") / "serving.npz")
        pipeline = (Pipeline(_quick_run_config())
                    .pretrain()
                    .finetune()
                    .export_for_serving(path))
        return pipeline, path

    def test_export_carries_finetuned_bundle(self, exported):
        pipeline, path = exported
        loaded = PretrainArtifact.load(path)
        assert loaded.finetuned is not None
        assert loaded.finetuned.strategy == "eie-gru"
        assert loaded.finetuned.eie_state is not None
        assert loaded.finetuned.history == pipeline.history

    def test_evaluate_loads_saved_head_without_refitting(self, exported,
                                                         monkeypatch):
        _, path = exported
        pipeline = Pipeline.from_artifact(path)
        monkeypatch.setattr(
            Pipeline, "finetune",
            lambda *a, **k: pytest.fail("evaluate re-ran fine-tuning "
                                        "despite a saved head"))
        metrics = pipeline.evaluate()
        assert 0.0 <= metrics.auc <= 1.0
        assert pipeline.history  # restored from the bundle

    def test_service_uses_finetuned_head(self, exported):
        _, path = exported
        service = EmbeddingService.from_artifact(path)
        assert service.stats()["scorer"] == "finetuned-head"
        t = 1000.0
        scores = service.score_links([0, 1], [25, 30], t)
        rows = service.embed([0, 1, 25, 30], t)
        dots = np.sum(rows[:2] * rows[2:], axis=1)
        # The head is a trained MLP — not the dot product.
        assert not np.allclose(scores, dots)
        ids, _ = service.top_k(0, t, 3)
        assert len(ids) == 3
