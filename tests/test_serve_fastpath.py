"""The serving fast path: staleness-bounded cache reuse, the IVF
shortlist index, background compaction and snapshot/restore.

The load-bearing guarantees:

* a staleness bound of zero **is** the exact path — same code, same
  bits — and a non-zero bound only ever serves rows whose inputs
  changed within the bound (measured via the ingest touch clocks);
* the `CoarseQuantIndex` shortlist is always exactly rescored, so the
  indexed `top_k` can lose recall but never return a wrong score, and
  with a shortlist covering the catalog it is bit-identical to the
  exact scan;
* generation-swapped background compaction answers every query
  bit-identically to synchronous compaction (and to a finder rebuilt
  from scratch);
* `snapshot()` → `from_snapshot()` restores a replica bit-identical to
  the one that wrote it — embeddings, scores, pending messages and all
  — without replaying the ingested history.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.serve import (BackgroundCompactor, CoarseQuantIndex,
                         DynamicNeighborFinder, EmbeddingService,
                         LocalClient, MicroBatchPlanner, ServeError,
                         SnapshotError, StalenessPolicy, read_snapshot,
                         start_http_server)
from repro.serve.http import HttpClient
from repro.serve.index import kmeans_fit
from repro.tasks.ranking import top_k_from_scores

from .test_serve import (NUM_NODES, make_split_stream, pretrain_artifact,
                         tiny_config)


@pytest.fixture(scope="module")
def artifact_and_streams():
    full, pre, suffix = make_split_stream(seed=3)
    artifact = pretrain_artifact(pre, tiny_config("tgn", "sparse"))
    return artifact, full, pre, suffix


def build_service(artifact_and_streams, **knobs) -> EmbeddingService:
    artifact, _, pre, _ = artifact_and_streams
    return EmbeddingService.from_artifact(artifact, history=pre, **knobs)


def suffix_blocks(suffix, block: int = 30):
    for lo in range(0, suffix.num_events, block):
        hi = min(lo + block, suffix.num_events)
        yield (suffix.src[lo:hi], suffix.dst[lo:hi],
               suffix.timestamps[lo:hi])


# ======================================================================
# StalenessPolicy + bounded cache reuse
# ======================================================================

class TestStalenessPolicy:
    def test_defaults_are_exact(self):
        assert StalenessPolicy().exact
        assert StalenessPolicy(0.0, 5.0).exact
        assert StalenessPolicy(3.0, 0.0).exact
        assert not StalenessPolicy(3.0).exact
        assert not StalenessPolicy(1.0, 2.5).exact

    def test_negative_bounds_rejected(self):
        with pytest.raises(ValueError):
            StalenessPolicy(-1.0)
        with pytest.raises(ValueError):
            StalenessPolicy(0.0, -0.5)

    def test_planner_requires_touch_state_for_lazy_policy(self):
        compute = lambda nodes, ts: np.zeros((len(nodes), 2))
        with pytest.raises(ValueError, match="touch_state"):
            MicroBatchPlanner(compute, staleness=StalenessPolicy(2.0))
        # Exact policies need no clocks — the eager path never reads them.
        MicroBatchPlanner(compute, staleness=StalenessPolicy(0.0))

    def test_service_rejects_bad_bounds(self, artifact_and_streams):
        with pytest.raises(ServeError):
            build_service(artifact_and_streams, staleness_events=-1.0)


class TestStalenessBoundedCache:
    """Bound = 0 is the exact path; bound > 0 trades bits for hits."""

    def interleave(self, service, suffix, probes, t, block=30):
        """Ingest the suffix in blocks, embedding probes between blocks."""
        rows = []
        for src, dst, ts in suffix_blocks(suffix, block):
            service.ingest(src=src, dst=dst, timestamps=ts)
            rows.append(service.embed(probes, t).copy())
        return np.stack(rows)

    def test_bound_zero_bit_identical_to_exact(self, artifact_and_streams):
        _, _, _, suffix = artifact_and_streams
        probes = np.arange(0, NUM_NODES, 7)
        t = float(suffix.timestamps[-1]) + 1.0
        exact = build_service(artifact_and_streams)
        bound0 = build_service(artifact_and_streams, staleness_events=0.0,
                               staleness_time=123.0)
        assert exact.planner.staleness.exact
        assert bound0.planner.staleness.exact
        a = self.interleave(exact, suffix, probes, t)
        b = self.interleave(bound0, suffix, probes, t)
        np.testing.assert_array_equal(a, b)
        assert bound0.planner.stats.stale_hits == 0

    def test_bounded_policy_serves_stale_rows(self, artifact_and_streams):
        _, _, _, suffix = artifact_and_streams
        probes = np.unique(np.concatenate([suffix.src[:30],
                                           suffix.dst[:30]]))
        t = float(suffix.timestamps[-1]) + 1.0
        # One shared quantized key per node: the whole query range maps
        # to a single cache slot, so re-queries after ingest are hits
        # (stale or invalidated) rather than new keys.
        stale = build_service(artifact_and_streams, staleness_events=64.0,
                              time_resolution=1e6)
        exact = build_service(artifact_and_streams, time_resolution=1e6)
        before = stale.embed(probes, t).copy()
        exact.embed(probes, t)
        src, dst, ts = next(suffix_blocks(suffix, 30))
        stale.ingest(src=src, dst=dst, timestamps=ts)
        exact.ingest(src=src, dst=dst, timestamps=ts)
        after_stale = stale.embed(probes, t)
        after_exact = exact.embed(probes, t)
        # The bounded service reused every cached row bit-for-bit...
        np.testing.assert_array_equal(after_stale, before)
        assert stale.planner.stats.stale_hits > 0
        # ...while the exact service recomputed the touched ones.
        touched = np.intersect1d(probes, np.union1d(src, dst))
        assert len(touched) > 0
        assert not np.array_equal(after_exact, before)
        assert stale.planner.stats.cache_misses < \
            exact.planner.stats.cache_misses

    def test_exceeding_the_bound_recomputes(self, artifact_and_streams):
        _, _, _, suffix = artifact_and_streams
        probes = np.unique(suffix.src[:60])
        t = float(suffix.timestamps[-1]) + 1.0
        stale = build_service(artifact_and_streams, staleness_events=2.0,
                              time_resolution=1e6)
        exact = build_service(artifact_and_streams, time_resolution=1e6)
        stale.embed(probes, t)
        for i, (src, dst, ts) in enumerate(suffix_blocks(suffix, 20)):
            stale.ingest(src=src, dst=dst, timestamps=ts)
            exact.ingest(src=src, dst=dst, timestamps=ts)
            if i >= 4:
                break
        # The clock counts blocks that touched each row, so only rows
        # past the 2-block budget must be recomputed — and those land
        # exactly on the exact service's answer.
        over = stale._ingestor.touch_count[probes] > 2
        assert over.any()
        np.testing.assert_array_equal(stale.embed(probes, t)[over],
                                      exact.embed(probes, t)[over])
        assert stale.planner.stats.stale_evictions > 0

    def test_time_bound_caps_event_bound(self, artifact_and_streams):
        _, _, _, suffix = artifact_and_streams
        probes = np.unique(suffix.src[:40])
        t = float(suffix.timestamps[-1]) + 1.0
        # Huge event budget but a zero-width time budget after the first
        # touch: any touched row whose newest event moved time forward
        # must be recomputed.
        stale = build_service(artifact_and_streams, staleness_events=1e9,
                              staleness_time=1e-9, time_resolution=1e6)
        exact = build_service(artifact_and_streams, time_resolution=1e6)
        stale.embed(probes, t)
        exact.embed(probes, t)
        for src, dst, ts in suffix_blocks(suffix, 40):
            stale.ingest(src=src, dst=dst, timestamps=ts)
            exact.ingest(src=src, dst=dst, timestamps=ts)
        np.testing.assert_array_equal(stale.embed(probes, t),
                                      exact.embed(probes, t))


# ======================================================================
# CoarseQuantIndex
# ======================================================================

def clustered_vectors(rng, n, dim=16, clusters=12):
    centers = rng.normal(scale=4.0, size=(clusters, dim))
    assign = rng.integers(0, clusters, n)
    return centers[assign] + rng.normal(scale=0.4, size=(n, dim))


class TestCoarseQuantIndex:
    def test_kmeans_deterministic_and_shapes(self):
        rng = np.random.default_rng(0)
        x = clustered_vectors(rng, 200)
        c1 = kmeans_fit(x, 8, np.random.default_rng(1))
        c2 = kmeans_fit(x, 8, np.random.default_rng(1))
        np.testing.assert_array_equal(c1, c2)
        assert c1.shape == (8, x.shape[1])
        # k >= n degenerates to the points themselves.
        assert kmeans_fit(x[:3], 5, np.random.default_rng(0)).shape == \
            (3, x.shape[1])

    def test_full_probe_matches_exact_scan(self):
        rng = np.random.default_rng(1)
        vecs = clustered_vectors(rng, 300)
        ids = rng.permutation(10_000)[:300].astype(np.int64)
        index = CoarseQuantIndex(nlist=10, nprobe=10)
        index.build(ids, vecs)
        for _ in range(5):
            q = rng.normal(size=vecs.shape[1])
            got = index.search(q, 10)
            want, _ = top_k_from_scores(ids, vecs @ q, 10)
            assert set(got[:10].tolist()) == set(want.tolist())

    def test_recall_at_10_with_partial_probe(self):
        rng = np.random.default_rng(2)
        vecs = clustered_vectors(rng, 2000)
        ids = np.arange(2000, dtype=np.int64)
        index = CoarseQuantIndex(nprobe=8)   # nlist auto ~ sqrt(2000)=45
        index.build(ids, vecs)
        hits = total = 0
        for _ in range(50):
            q = vecs[rng.integers(0, len(vecs))] + \
                rng.normal(scale=0.2, size=vecs.shape[1])
            got = set(index.search(q, 10).tolist())
            want, _ = top_k_from_scores(ids, vecs @ q, 10)
            hits += len(got & set(want.tolist()))
            total += len(want)
        assert hits / total >= 0.95
        assert index.stats.scanned < index.stats.queries * len(vecs)

    def test_pending_tail_always_found(self):
        rng = np.random.default_rng(3)
        vecs = clustered_vectors(rng, 200)
        index = CoarseQuantIndex(nprobe=1)
        index.build(np.arange(200), vecs)
        q = rng.normal(size=vecs.shape[1])
        q /= np.linalg.norm(q)
        # A pending candidate aligned with the query dominates every
        # listed vector and must appear first despite nprobe=1.
        index.add(np.asarray([777]), (q * 1e3)[None, :])
        assert index.search(q, 5)[0] == 777
        assert len(index) == 201

    def test_replace_and_remove(self):
        rng = np.random.default_rng(4)
        vecs = clustered_vectors(rng, 100)
        index = CoarseQuantIndex(nprobe=10)
        index.build(np.arange(100), vecs)
        q = rng.normal(size=vecs.shape[1])
        index.replace(np.asarray([7]), (q * 1e3)[None, :])
        assert index.search(q, 3)[0] == 7
        index.remove(np.asarray([7]))
        assert 7 not in index.search(q, 100).tolist()
        assert len(index) == 99

    def test_rebuild_trigger(self):
        rng = np.random.default_rng(5)
        vecs = clustered_vectors(rng, 64)
        index = CoarseQuantIndex(rebuild_fraction=0.25)
        index.build(np.arange(64), vecs)
        assert not index.needs_rebuild()
        index.add(np.arange(100, 120), clustered_vectors(rng, 20))
        assert index.needs_rebuild()

    def test_empty_and_unbuilt(self):
        index = CoarseQuantIndex()
        assert len(index.search(np.zeros(4), 5)) == 0
        index.build(np.empty(0, dtype=np.int64), np.zeros((0, 4)))
        assert len(index) == 0
        assert len(index.search(np.zeros(4), 5)) == 0


# ======================================================================
# Indexed top_k through the service
# ======================================================================

class TestIndexedTopK:
    def test_covering_shortlist_is_bit_identical(self, artifact_and_streams):
        _, _, pre, suffix = artifact_and_streams
        t = float(suffix.timestamps[0])
        indexed = build_service(artifact_and_streams, index=True,
                                index_shortlist=NUM_NODES,
                                index_nprobe=64)
        exact = build_service(artifact_and_streams)
        for src in [0, 3, 11]:
            ids_a, scores_a = indexed.top_k(src, t, 5)
            ids_b, scores_b = exact.top_k(src, t, 5)
            np.testing.assert_array_equal(ids_a, ids_b)
            np.testing.assert_array_equal(scores_a, scores_b)
        stats = indexed.stats()
        assert stats["index"] is not None
        assert stats["index"]["queries"] == 3
        assert exact.stats()["index"] is None

    def test_exact_override_bypasses_index(self, artifact_and_streams):
        _, _, _, suffix = artifact_and_streams
        t = float(suffix.timestamps[0])
        service = build_service(artifact_and_streams, index=True)
        service.top_k(0, t, 5, exact=True)
        assert service.stats()["index"] is None
        service.top_k(0, t, 5)
        assert service.stats()["index"]["queries"] == 1
        # Explicit candidate sets are always scanned exactly.
        service.top_k(0, t, 3, candidates=np.asarray([40, 41, 42]))
        assert service.stats()["index"]["queries"] == 1

    def test_ingested_candidates_reach_the_index(self, artifact_and_streams):
        _, _, _, suffix = artifact_and_streams
        service = build_service(artifact_and_streams, index=True,
                                index_shortlist=NUM_NODES,
                                index_nprobe=64)
        t0 = float(suffix.timestamps[0])
        service.top_k(0, t0, 5)   # builds over the pre-train catalog
        built = len(service._index)
        src, dst, ts = next(suffix_blocks(suffix, 40))
        service.ingest(src=src, dst=dst, timestamps=ts)
        t1 = float(ts[-1]) + 1.0
        ids, scores = service.top_k(int(src[0]), t1, NUM_NODES)
        exact = build_service(artifact_and_streams)
        exact.ingest(src=src, dst=dst, timestamps=ts)
        ids_e, scores_e = exact.top_k(int(src[0]), t1, NUM_NODES)
        np.testing.assert_array_equal(ids, ids_e)
        np.testing.assert_array_equal(scores, scores_e)
        assert len(service._index) >= built

    def test_top_k_edge_cases(self, artifact_and_streams):
        _, _, _, suffix = artifact_and_streams
        t = float(suffix.timestamps[0])
        for knobs in ({}, {"index": True}):
            service = build_service(artifact_and_streams, **knobs)
            ids, scores = service.top_k(0, t, 0)
            assert len(ids) == 0 and len(scores) == 0
            ids, scores = service.top_k(0, t, 5, candidates=np.empty(0))
            assert len(ids) == 0 and len(scores) == 0
            ids, _ = service.top_k(0, t, 10, candidates=np.asarray([40, 41]))
            assert len(ids) == 2
            ids, _ = service.top_k(0, t, 10 * NUM_NODES)
            assert len(ids) == len(np.unique(service._candidates))
            with pytest.raises(ServeError):
                service.top_k(0, t, -1)

    def test_top_k_from_scores_k_zero(self):
        ids, scores = top_k_from_scores(np.asarray([3, 1]),
                                        np.asarray([0.5, 0.2]), 0)
        assert len(ids) == 0 and len(scores) == 0
        with pytest.raises(ValueError):
            top_k_from_scores(np.asarray([3]), np.asarray([0.5]), -1)


# ======================================================================
# Background compaction
# ======================================================================

class TestBackgroundCompaction:
    def test_job_commit_equivalence(self):
        full, pre, suffix = make_split_stream(seed=9)
        finder = DynamicNeighborFinder(pre, compaction_threshold=10**9)
        finder.append(suffix.src, suffix.dst, suffix.timestamps)
        job = finder.compaction_job()
        finder.build_compaction(job)
        assert finder.commit_compaction(job)
        assert finder.delta_events == 0
        scratch = DynamicNeighborFinder(full)
        nodes = np.arange(NUM_NODES)
        t = np.full(NUM_NODES, full.timestamps[-1] + 1.0)
        for name in ("batch_degree",):
            np.testing.assert_array_equal(getattr(finder, name)(nodes, t),
                                          getattr(scratch, name)(nodes, t))
        nbrs_a, ts_a, _, mask_a = finder.batch_most_recent(nodes, t, 5)
        nbrs_b, ts_b, _, mask_b = scratch.batch_most_recent(nodes, t, 5)
        np.testing.assert_array_equal(nbrs_a, nbrs_b)
        np.testing.assert_array_equal(ts_a, ts_b)
        np.testing.assert_array_equal(mask_a, mask_b)

    def test_superseded_job_is_discarded(self):
        _, pre, suffix = make_split_stream(seed=9)
        finder = DynamicNeighborFinder(pre, compaction_threshold=10**9)
        half = suffix.num_events // 2
        finder.append(suffix.src[:half], suffix.dst[:half],
                      suffix.timestamps[:half])
        job = finder.compaction_job()
        finder.build_compaction(job)
        finder.compact()                     # a competing sync compaction
        assert not finder.commit_compaction(job)
        # The stale commit must not have clobbered the newer base.
        assert finder.num_events == pre.num_events + half

    def test_background_equals_synchronous(self, artifact_and_streams):
        _, full, _, suffix = artifact_and_streams
        probes = np.arange(0, NUM_NODES, 5)
        t = float(suffix.timestamps[-1]) + 1.0
        background = build_service(artifact_and_streams,
                                   compaction_threshold=25)
        sync = build_service(artifact_and_streams, compaction_threshold=25,
                             background_compaction=False)
        try:
            for src, dst, ts in suffix_blocks(suffix, 20):
                background.ingest(src=src, dst=dst, timestamps=ts)
                sync.ingest(src=src, dst=dst, timestamps=ts)
            assert background._compactor.drain()
            np.testing.assert_array_equal(background.embed(probes, t),
                                          sync.embed(probes, t))
            assert sync._compactor is None
            assert sync.finder.compactions > 0
            stats = background.stats()["graph"]
            assert stats["background_compaction"]
            assert stats["compactor"]["generations"] >= 1
            assert background.finder.num_events == full.num_events
        finally:
            background.close()

    def test_queries_during_background_build(self, artifact_and_streams):
        """Hammer embed() while compaction cycles run; then verify bits."""
        _, _, _, suffix = artifact_and_streams
        probes = np.arange(0, NUM_NODES, 3)
        t = float(suffix.timestamps[-1]) + 1.0
        service = build_service(artifact_and_streams,
                                compaction_threshold=15)
        reference = build_service(artifact_and_streams,
                                  background_compaction=False,
                                  compaction_threshold=10**9)
        errors = []

        def hammer():
            try:
                for _ in range(20):
                    service.embed(probes, t)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        thread = threading.Thread(target=hammer)
        thread.start()
        try:
            for src, dst, ts in suffix_blocks(suffix, 10):
                service.ingest(src=src, dst=dst, timestamps=ts)
                reference.ingest(src=src, dst=dst, timestamps=ts)
            thread.join()
            assert not errors
            assert service._compactor.drain()
            np.testing.assert_array_equal(service.embed(probes, t),
                                          reference.embed(probes, t))
        finally:
            service.close()


# ======================================================================
# Snapshot / restore
# ======================================================================

class TestSnapshot:
    def ingest_half(self, service, suffix, block=25):
        half = suffix.num_events // 2
        for src, dst, ts in suffix_blocks(suffix.slice_index(0, half),
                                          block):
            service.ingest(src=src, dst=dst, timestamps=ts)
        return half

    def test_round_trip_bit_identity(self, artifact_and_streams, tmp_path):
        artifact, _, _, suffix = artifact_and_streams
        path = str(tmp_path / "replica.npz")
        probes = np.arange(0, NUM_NODES, 4)
        t = float(suffix.timestamps[-1]) + 1.0
        # Threshold high enough that part of the suffix stays in the
        # delta buffer, and the last ingest leaves staged messages — the
        # two state pieces a naive snapshot would lose.
        service = build_service(artifact_and_streams,
                                compaction_threshold=70,
                                background_compaction=False)
        half = self.ingest_half(service, suffix)
        meta = service.snapshot(path)
        assert meta["num_events"] == service.finder.num_events
        assert service.finder.delta_events > 0
        restored = EmbeddingService.from_snapshot(artifact, path)
        np.testing.assert_array_equal(service.embed(probes, t),
                                      restored.embed(probes, t))
        src = suffix.src[:8]
        dst = suffix.dst[:8]
        np.testing.assert_array_equal(service.score_links(src, dst, t),
                                      restored.score_links(src, dst, t))
        ids_a, scores_a = service.top_k(0, t, 10)
        ids_b, scores_b = restored.top_k(0, t, 10)
        np.testing.assert_array_equal(ids_a, ids_b)
        np.testing.assert_array_equal(scores_a, scores_b)
        stats = restored.stats()["snapshot"]
        assert stats["restored"] and stats["events_since_restore"] == 0

    def test_continued_ingest_equivalence(self, artifact_and_streams,
                                          tmp_path):
        artifact, _, _, suffix = artifact_and_streams
        path = str(tmp_path / "replica.npz")
        probes = np.arange(0, NUM_NODES, 4)
        t = float(suffix.timestamps[-1]) + 1.0
        service = build_service(artifact_and_streams,
                                compaction_threshold=70,
                                background_compaction=False)
        half = self.ingest_half(service, suffix)
        service.snapshot(path)
        restored = EmbeddingService.from_snapshot(
            artifact, path, background_compaction=False,
            compaction_threshold=70)
        rest = suffix.slice_index(half, suffix.num_events)
        for src, dst, ts in suffix_blocks(rest, 25):
            service.ingest(src=src, dst=dst, timestamps=ts)
            restored.ingest(src=src, dst=dst, timestamps=ts)
        np.testing.assert_array_equal(service.embed(probes, t),
                                      restored.embed(probes, t))
        assert restored.finder.num_events == service.finder.num_events

    def test_edge_featured_round_trip(self, tmp_path):
        full, pre, suffix = make_split_stream(seed=5, edge_dim=3)
        artifact = pretrain_artifact(pre, tiny_config("tgn", "sparse",
                                                      edge_dim=3))
        service = EmbeddingService.from_artifact(
            artifact, history=pre, background_compaction=False)
        half = suffix.num_events // 2
        first = suffix.slice_index(0, half)
        service.ingest(first)
        path = str(tmp_path / "edge.npz")
        service.snapshot(path)
        restored = EmbeddingService.from_snapshot(artifact, path)
        probes = np.arange(0, NUM_NODES, 6)
        t = float(suffix.timestamps[-1]) + 1.0
        np.testing.assert_array_equal(service.embed(probes, t),
                                      restored.embed(probes, t))
        # Both replicas keep accepting featured events.
        rest = suffix.slice_index(half, suffix.num_events)
        service.ingest(rest)
        restored.ingest(rest)
        np.testing.assert_array_equal(service.embed(probes, t),
                                      restored.embed(probes, t))

    def test_wrong_artifact_rejected(self, artifact_and_streams, tmp_path):
        artifact, _, _, suffix = artifact_and_streams
        path = str(tmp_path / "replica.npz")
        service = build_service(artifact_and_streams,
                                background_compaction=False)
        service.snapshot(path)
        other_full, other_pre, _ = make_split_stream(seed=11)
        other = pretrain_artifact(other_pre, tiny_config("tgn", "sparse"))
        with pytest.raises(SnapshotError, match="fingerprint"):
            EmbeddingService.from_snapshot(other, path)

    def test_not_a_snapshot_rejected(self, tmp_path):
        path = str(tmp_path / "junk.npz")
        np.savez(path, something=np.arange(3))
        with pytest.raises(SnapshotError, match="meta_json"):
            read_snapshot(path)
        with pytest.raises(SnapshotError):
            read_snapshot(str(tmp_path / "missing.npz"))

    def test_meta_is_json_clean(self, artifact_and_streams, tmp_path):
        path = str(tmp_path / "replica.npz")
        service = build_service(artifact_and_streams,
                                background_compaction=False)
        meta = service.snapshot(path)
        meta2, data = read_snapshot(path)
        data.close()
        assert json.loads(json.dumps(meta)) == meta2


# ======================================================================
# HTTP surface of the fast path
# ======================================================================

class TestHttpFastPath:
    @pytest.fixture()
    def service(self, artifact_and_streams):
        svc = build_service(artifact_and_streams, index=True,
                            index_shortlist=NUM_NODES, index_nprobe=64)
        yield svc
        svc.close()

    def test_stats_reports_fast_path_state(self, service):
        stats = LocalClient(service).stats()
        assert stats["staleness"] == {"exact": True, "max_age_events": 0.0,
                                      "max_age_time": None}
        assert stats["graph"]["background_compaction"]
        assert stats["graph"]["compactor"]["idle"] in (True, False)
        assert stats["candidates"] > 0
        assert json.loads(json.dumps(stats))["snapshot"]["restored"] is False

    def test_snapshot_endpoint_and_topk_exact(self, service, tmp_path,
                                              artifact_and_streams):
        artifact, _, _, suffix = artifact_and_streams
        t = float(suffix.timestamps[0])
        server, thread = start_http_server(service, port=0)
        try:
            port = server.server_address[1]
            client = HttpClient(f"http://127.0.0.1:{port}")
            indexed = client.topk(0, t, 5)
            exact = client.topk(0, t, 5, exact=True)
            assert indexed == exact     # covering shortlist: identical
            path = str(tmp_path / "http.npz")
            reply = client.snapshot(path)
            assert reply["path"] == path
            restored = EmbeddingService.from_snapshot(artifact, path)
            probe = restored.embed([0], t)
            np.testing.assert_array_equal(probe, service.embed([0], t))
        finally:
            server.shutdown()
            thread.join()
