"""CLI smoke tests: the three-stage pipeline driven through __main__."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.api import Pipeline, RunConfig

TINY_RUN = {
    "backbone": "tgn",
    "task": "link_prediction",
    "strategy": "eie-gru",
    "data": {"dataset": "meituan", "num_users": 20, "num_items": 15,
             "events_main": 200},
    "pretrain": {"eta": 3, "epsilon": 3, "depth": 1, "epochs": 1,
                 "batch_size": 64, "memory_dim": 8, "embed_dim": 8,
                 "time_dim": 4, "n_neighbors": 3, "num_checkpoints": 3},
    "finetune": {"epochs": 1, "batch_size": 64, "patience": 1,
                 "eie_out_dim": 4},
}


@pytest.fixture
def config_file(tmp_path):
    path = tmp_path / "run.json"
    path.write_text(json.dumps(TINY_RUN))
    return str(path)


class TestPipelineCommands:
    def test_pretrain_then_evaluate_round_trip(self, config_file, tmp_path,
                                               capsys):
        """The acceptance criterion: two-stage CLI == one-process Pipeline."""
        artifact = str(tmp_path / "artifact.npz")
        metrics_file = str(tmp_path / "metrics.json")

        assert main(["pretrain", "--config", config_file, "--out", artifact,
                     "--quiet"]) == 0
        assert "artifact written" in capsys.readouterr().out

        assert main(["evaluate", "--artifact", artifact,
                     "--task", "link_prediction", "--strategy", "eie-attn",
                     "--quiet", "--out", metrics_file]) == 0
        cli_metrics = json.loads(open(metrics_file).read())

        config = RunConfig.from_dict(TINY_RUN).with_updates(
            strategy="eie-attn")
        expected = Pipeline(config).pretrain().finetune().evaluate()
        assert cli_metrics == expected.as_row()

    def test_finetune_reports_history(self, config_file, tmp_path, capsys):
        artifact = str(tmp_path / "artifact.npz")
        history_file = str(tmp_path / "history.json")
        assert main(["pretrain", "--config", config_file, "--out", artifact,
                     "--quiet"]) == 0
        capsys.readouterr()
        assert main(["finetune", "--artifact", artifact, "--quiet",
                     "--out-history", history_file]) == 0
        out = capsys.readouterr().out
        assert "best val AUC" in out
        history = json.loads(open(history_file).read())
        assert history and "val_auc" in history[0]

    def test_set_overrides_reach_the_run(self, config_file, tmp_path,
                                         capsys):
        artifact = str(tmp_path / "artifact.npz")
        assert main(["pretrain", "--config", config_file, "--out", artifact,
                     "--quiet", "--set", "pretrain.num_checkpoints=2",
                     "--set", "backbone=jodie"]) == 0
        capsys.readouterr()
        from repro.api import PretrainArtifact
        loaded = PretrainArtifact.load(artifact)
        assert loaded.backbone == "jodie"
        assert len(loaded.result.checkpoints) == 2

    def test_dump_config_applies_overrides(self, capsys):
        assert main(["pretrain", "--dump-config",
                     "--set", "pretrain.beta=0.25"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["pretrain"]["beta"] == 0.25

    def test_unknown_override_fails_cleanly(self, capsys):
        assert main(["pretrain", "--dump-config",
                     "--set", "pretrain.bogus=1"]) == 2
        assert "unknown config key" in capsys.readouterr().err

    def test_evaluate_without_artifact_needs_strategy_none(self, capsys):
        assert main(["evaluate", "--quiet"]) == 2
        assert "--artifact" in capsys.readouterr().err

    def test_evaluate_rejects_bogus_artifact(self, tmp_path, capsys):
        missing = str(tmp_path / "missing.npz")
        assert main(["evaluate", "--artifact", missing, "--quiet"]) == 2
        assert "error" in capsys.readouterr().err


class TestLegacyCommands:
    def test_list_prints_registry(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table7" in out and "figure6" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "table99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_profile_unknown_dataset(self, capsys):
        assert main(["profile", "imdb"]) == 2
        assert "unknown dataset" in capsys.readouterr().err
