"""Unit tests for the reverse-mode autograd engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, no_grad, is_grad_enabled
from repro.nn import functional as F

from .conftest import numeric_gradient


class TestTensorBasics:
    def test_creation_defaults_to_float64(self):
        t = Tensor([1, 2, 3])
        assert t.data.dtype == np.float64
        assert not t.requires_grad

    def test_shape_ndim_size(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.shape == (2, 3, 4)
        assert t.ndim == 3
        assert t.size == 24
        assert len(t) == 2

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_detach_cuts_graph(self):
        a = Tensor([1.0], requires_grad=True)
        b = (a * 2.0).detach()
        assert not b.requires_grad
        assert b.data[0] == 2.0

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1.0]), Tensor)

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_needs_seed(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2.0).backward()

    def test_backward_with_explicit_seed(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        (t * 3.0).backward(np.array([1.0, 1.0]))
        np.testing.assert_allclose(t.grad, [3.0, 3.0])


class TestArithmetic:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_mul_backward(self):
        a = Tensor([2.0], requires_grad=True)
        b = Tensor([5.0], requires_grad=True)
        (a * b).sum().backward()
        assert a.grad[0] == 5.0
        assert b.grad[0] == 2.0

    def test_sub_and_neg(self):
        a = Tensor([4.0], requires_grad=True)
        (1.0 - a).sum().backward()
        assert a.grad[0] == -1.0

    def test_div(self):
        a = Tensor([2.0], requires_grad=True)
        (1.0 / a).sum().backward()
        np.testing.assert_allclose(a.grad, [-0.25])

    def test_pow_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (a ** 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, [6.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_broadcast_add_unbroadcasts_grad(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, 3.0 * np.ones(4))

    def test_broadcast_mul_keepdims_axis(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.full((2, 1), 2.0), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(b.grad, [[3.0], [3.0]])

    def test_gradient_accumulates_across_backwards(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0).sum().backward()
        (a * 3.0).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0])

    def test_diamond_graph_accumulates_once_per_path(self):
        a = Tensor([2.0], requires_grad=True)
        b = a * 3.0
        c = a * 4.0
        (b + c).sum().backward()
        np.testing.assert_allclose(a.grad, [7.0])


class TestMatmulAndShapes:
    def test_matmul_2d(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        b = Tensor(np.arange(12, dtype=float).reshape(3, 4), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, b.data.sum(axis=1).reshape(1, 3).repeat(2, 0))
        np.testing.assert_allclose(b.grad, a.data.sum(axis=0).reshape(3, 1).repeat(4, 1))

    def test_matmul_vector_matrix(self):
        v = Tensor(np.ones(3), requires_grad=True)
        m = Tensor(np.ones((3, 2)), requires_grad=True)
        (v @ m).sum().backward()
        np.testing.assert_allclose(v.grad, [2.0, 2.0, 2.0])

    def test_reshape_roundtrip(self):
        a = Tensor(np.arange(6, dtype=float), requires_grad=True)
        b = a.reshape(2, 3).reshape(-1)
        b.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(6))

    def test_transpose_backward(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        (a.T * Tensor(np.arange(6, dtype=float).reshape(3, 2))).sum().backward()
        assert a.grad.shape == (2, 3)

    def test_getitem_scatter_backward(self):
        a = Tensor(np.zeros(5), requires_grad=True)
        idx = np.array([0, 0, 3])
        a[idx].sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 0.0, 0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_axis_keepdims(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        a.sum(axis=1, keepdims=True).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_mean_scales_gradient(self):
        a = Tensor(np.ones(4), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full(4, 0.25))

    def test_mean_along_axis(self):
        a = Tensor(np.ones((2, 4)), requires_grad=True)
        a.mean(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 4), 0.25))

    def test_max_ties_split_gradient(self):
        a = Tensor(np.array([1.0, 1.0, 0.0]), requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.5, 0.0])

    def test_max_axis(self):
        a = Tensor(np.array([[1.0, 3.0], [2.0, 0.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.0, 1.0], [1.0, 0.0]])


class TestNoGrad:
    def test_no_grad_blocks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            b = a * 2.0
        assert not b.requires_grad

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_nested(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()


class TestNumericalGradients:
    """Finite-difference checks over composite expressions."""

    def test_composite_expression(self, rng):
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2)), requires_grad=True)

        def build():
            return (F.tanh(x @ w) * F.sigmoid(x @ w)).sum()

        loss = build()
        loss.backward()
        for t in (x, w):
            numeric = numeric_gradient(lambda: build().item(), t.data)
            np.testing.assert_allclose(t.grad, numeric, atol=1e-6, rtol=1e-5)

    def test_softmax_jacobian(self, rng):
        x = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        weights = rng.normal(size=(3, 5))

        def build():
            return (F.softmax(x) * Tensor(weights)).sum()

        build().backward()
        numeric = numeric_gradient(lambda: build().item(), x.data)
        np.testing.assert_allclose(x.grad, numeric, atol=1e-6, rtol=1e-5)

    def test_division_chain(self, rng):
        x = Tensor(rng.uniform(0.5, 2.0, size=6), requires_grad=True)

        def build():
            return ((x / (x + 1.0)) ** 3.0).sum()

        build().backward()
        numeric = numeric_gradient(lambda: build().item(), x.data)
        np.testing.assert_allclose(x.grad, numeric, atol=1e-6, rtol=1e-5)
