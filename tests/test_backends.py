"""Kernel backends (repro.nn.backends): registry, codegen, equivalence.

Three contracts:

* the registry resolves names safely — unknown names raise, an
  unavailable backend falls back to numpy with one warning, and the
  active-backend scatter dispatch restores cleanly;
* the fused-chain code generator is correct — random chains of every
  chain-compilable op, executed through the ``pyloop`` backend (the
  same generated source numba jits), reproduce eager gradients at both
  float32 and float64, including a finite-difference gradcheck;
* the jitted numba kernels are drop-in twins of the numpy primitives —
  forward data and VJP grads match under dtype-scaled tolerances, and
  with numba absent everything stays bit-identical to the baseline.

The numba-only tests are skipped when the optional dependency is
missing (the default CI job); the dedicated numba job runs them.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.nn import CompiledStep, Tensor, backends, functional as F
from repro.nn.backends import chaingen, numba_backend
from repro.nn.compile import _FusedChain

from .conftest import numeric_gradient

needs_numba = pytest.mark.skipif(not backends.numba_available(),
                                 reason="numba not installed")


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_numpy_backend_is_singleton(self):
        assert backends.get_backend("numpy") is backends.get_backend("numpy")
        assert backends.get_backend("numpy").name == "numpy"

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            backends.get_backend("cuda")
        with pytest.raises(ValueError):
            backends.resolve_backend("cuda")

    def test_available_backends_shape(self):
        avail = backends.available_backends()
        assert set(avail) == set(backends.BACKEND_NAMES)
        assert avail["numpy"] is True and avail["pyloop"] is True
        assert avail["numba"] == backends.numba_available()

    def test_resolve_none_is_active_backend(self):
        assert backends.resolve_backend(None) is backends.active_backend()
        with backends.use_backend("pyloop"):
            assert backends.resolve_backend(None).name == "pyloop"
        assert backends.resolve_backend(None).name == "numpy"

    def test_resolve_instance_passthrough(self):
        instance = backends.get_backend("pyloop")
        assert backends.resolve_backend(instance) is instance

    def test_use_backend_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with backends.use_backend("pyloop"):
                raise RuntimeError("boom")
        assert backends.active_backend().name == "numpy"


class TestScatterDispatch:
    def test_numpy_scatter_matches_ufunc_at(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=(12, 4)).astype(np.float32)
        idx = rng.integers(0, 5, size=12)
        expected = np.zeros((5, 4), np.float32)
        np.add.at(expected, idx, values)
        out = np.zeros((5, 4), np.float32)
        backends.scatter_add_rows(out, idx, values)
        assert np.array_equal(out, expected)

        expected_max = np.full((5, 4), -np.inf, np.float32)
        np.maximum.at(expected_max, idx, values)
        out_max = np.full((5, 4), -np.inf, np.float32)
        backends.scatter_max_rows(out_max, idx, values)
        assert np.array_equal(out_max, expected_max)


# ----------------------------------------------------------------------
# fused-chain codegen, exercised through the pyloop backend
# ----------------------------------------------------------------------
# Every op here lowers through CHAIN_BUILDERS; inputs are pre-squashed
# by sigmoid so log/sqrt stay in-domain and exp stays small.
CHAIN_OPS = {
    "tanh": F.tanh,
    "sigmoid": F.sigmoid,
    "exp": F.exp,
    "log": F.log,
    "sqrt": F.sqrt,
    "abs": F.abs_,
    "relu": F.relu,
    "leaky_relu": F.leaky_relu,
    "cos": F.cos,
    "clip": lambda t: F.clip(t, -0.9, 0.9),
    "neg": lambda t: -t,
    "mul_s": lambda t: t * 1.7,
    "pow": lambda t: t ** 2.0,
}


def _chain_step(op_names, weight):
    """A step whose backward fuses ``op_names`` into one chain."""
    def step(x):
        weight.zero_grad()
        h = F.sigmoid(Tensor(x) * weight)
        for name in op_names:
            h = CHAIN_OPS[name](h)
        loss = h.sum()
        loss.backward()
        return float(loss.item())
    return step


def _weight(dtype):
    return Tensor(np.linspace(-1.0, 1.0, 24, dtype=dtype).reshape(6, 4),
                  requires_grad=True)


def _fused_kernels(compiled, key):
    return [item.kernel for item in compiled._programs[key].items
            if isinstance(item, _FusedChain)]


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
@pytest.mark.parametrize("seed", range(6))
def test_random_chain_matches_eager(dtype, seed):
    rng = np.random.default_rng(seed)
    names = list(rng.choice(sorted(CHAIN_OPS), size=rng.integers(1, 6)))
    xs = rng.normal(size=(3, 6, 4)).astype(dtype)

    w_eager = _weight(dtype)
    eager_step = _chain_step(names, w_eager)
    eager_losses = [eager_step(x) for x in xs]
    eager_grad = w_eager.grad.copy()

    w_comp = _weight(dtype)
    compiled = CompiledStep(_chain_step(names, w_comp), backend="pyloop")
    losses = [compiled(x, key="k") for x in xs]
    assert compiled.stats()["replays"] == len(xs) - 1

    kernels = [k for k in _fused_kernels(compiled, "k") if k is not None]
    assert kernels, f"no compiled chain for {names}"
    tol = 1e-5 if dtype is np.float32 else 1e-12
    np.testing.assert_allclose(losses, eager_losses, rtol=tol)
    np.testing.assert_allclose(w_comp.grad, eager_grad, rtol=tol, atol=tol)


@pytest.mark.parametrize("length", range(1, 6))
def test_chain_of_length_n(length):
    # Deterministic ladder: the chain grows one smooth op per case.
    names = ["tanh", "mul_s", "sigmoid", "neg", "exp"][:length]
    x = np.linspace(-2.0, 2.0, 24, dtype=np.float64).reshape(6, 4)

    w_eager = _weight(np.float64)
    step = _chain_step(names, w_eager)
    step(x)
    eager_loss = step(x)

    w_comp = _weight(np.float64)
    compiled = CompiledStep(_chain_step(names, w_comp), backend="pyloop")
    compiled(x, key="k")
    replayed_loss = compiled(x, key="k")
    assert compiled.stats()["replays"] == 1
    assert any(k is not None for k in _fused_kernels(compiled, "k"))
    assert replayed_loss == pytest.approx(eager_loss, rel=1e-12)
    np.testing.assert_allclose(w_comp.grad, w_eager.grad, rtol=1e-12)


def test_replayed_chain_passes_gradcheck():
    names = ["tanh", "mul_s", "sigmoid"]
    x = np.linspace(-1.5, 1.5, 24, dtype=np.float64).reshape(6, 4)
    w = _weight(np.float64)
    compiled = CompiledStep(_chain_step(names, w), backend="pyloop")
    compiled(x, key="k")
    compiled(x, key="k")                       # replayed call
    assert compiled.stats()["replays"] == 1

    from repro.nn.autograd import no_grad

    def loss_value():
        with no_grad():
            h = F.sigmoid(Tensor(x) * w)
            for name in names:
                h = CHAIN_OPS[name](h)
            return float(h.sum().item())

    numeric = numeric_gradient(loss_value, w.data, eps=1e-6)
    np.testing.assert_allclose(w.grad, numeric, atol=1e-6, rtol=1e-5)


def test_numpy_backend_stays_bit_identical():
    names = ["sigmoid", "tanh", "mul_s"]
    x = np.linspace(-1.0, 1.0, 24, dtype=np.float32).reshape(6, 4)
    w_eager = _weight(np.float32)
    step = _chain_step(names, w_eager)
    losses = [step(x) for _ in range(3)]
    w_comp = _weight(np.float32)
    compiled = CompiledStep(_chain_step(names, w_comp), backend="numpy")
    assert [compiled(x, key="k") for _ in range(3)] == losses
    assert np.array_equal(w_comp.grad, w_eager.grad)


def test_broadcast_mul_falls_back_to_ew_path():
    # A mul against a row vector broadcasts: plan_chain returns None and
    # the chain stays on the numpy ew path, still matching eager.
    row = Tensor(np.linspace(0.5, 1.5, 4).reshape(1, 4), requires_grad=False)

    def make(weight):
        def step(x):
            weight.zero_grad()
            h = F.sigmoid(Tensor(x) * weight) * row
            loss = F.tanh(h).sum()
            loss.backward()
            return float(loss.item())
        return step

    x = np.linspace(-1.0, 1.0, 24, dtype=np.float64).reshape(6, 4)
    w_eager = _weight(np.float64)
    eager = [make(w_eager)(x) for _ in range(2)]
    w_comp = _weight(np.float64)
    compiled = CompiledStep(make(w_comp), backend="pyloop")
    assert [compiled(x, key="k") for _ in range(2)] == eager
    assert np.array_equal(w_comp.grad, w_eager.grad)


def test_chain_source_shared_across_constants():
    # Two chains that differ only in the mul constant share one variant
    # signature (the scalar is a runtime argument, not baked in).
    members_a = [("mul", ((6, 4), (1, 1)), 0, (6, 4)), ("tanh", ((6, 4),), 0, (6, 4))]
    plans_a = chaingen.plan_chain(members_a)
    plans_b = chaingen.plan_chain(members_a)
    assert (chaingen.chain_signature(plans_a, np.float32)
            == chaingen.chain_signature(plans_b, np.float32))
    assert (chaingen.chain_signature(plans_a, np.float32)
            != chaingen.chain_signature(plans_a, np.float64))
    source = chaingen.render_source(plans_a)
    assert "def _chain_kernel(src, dst, s0_0, a1, s1_0):" in source


# ----------------------------------------------------------------------
# kernel profiling
# ----------------------------------------------------------------------
def test_profile_collects_per_kernel_seconds():
    x = np.linspace(-1.0, 1.0, 24, dtype=np.float32).reshape(6, 4)
    w = _weight(np.float32)
    compiled = CompiledStep(_chain_step(["tanh"], w), profile=True)
    compiled(x, key="k")
    compiled(x, key="k")
    kernels = compiled.stats()["kernels"]
    assert kernels is not None
    labels = set(kernels)
    assert any(label.startswith("fwd:") for label in labels)
    assert any(label.startswith("chain:") or label.startswith("bwd:")
               for label in labels)
    for entry in kernels.values():
        assert entry["calls"] >= 1 and entry["seconds"] >= 0.0


def test_profile_off_by_default():
    w = _weight(np.float32)
    compiled = CompiledStep(_chain_step([], w))
    compiled(np.ones((6, 4), np.float32), key="k")
    assert compiled.stats()["kernels"] is None


# ----------------------------------------------------------------------
# fallback when numba is absent
# ----------------------------------------------------------------------
class TestNumbaFallback:
    @pytest.fixture
    def no_numba(self, monkeypatch):
        monkeypatch.setattr(numba_backend, "numba", None)
        monkeypatch.setattr(backends, "_INSTANCES",
                            {"numpy": backends.get_backend("numpy")})
        monkeypatch.setattr(backends, "_WARNED", set())

    def test_get_backend_raises(self, no_numba):
        with pytest.raises(backends.BackendUnavailable):
            backends.get_backend("numba")

    def test_resolve_warns_once_and_falls_back(self, no_numba):
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert backends.resolve_backend("numba").name == "numpy"
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert backends.resolve_backend("numba").name == "numpy"

    def test_compiled_step_with_numba_config_is_numpy_identical(
            self, no_numba):
        x = np.linspace(-1.0, 1.0, 24, dtype=np.float32).reshape(6, 4)
        w_ref = _weight(np.float32)
        reference = CompiledStep(_chain_step(["tanh", "sigmoid"], w_ref),
                                 backend="numpy")
        ref_losses = [reference(x, key="k") for _ in range(3)]

        w = _weight(np.float32)
        with pytest.warns(RuntimeWarning):
            compiled = CompiledStep(_chain_step(["tanh", "sigmoid"], w),
                                    backend="numba")
        assert compiled.backend.name == "numpy"
        assert compiled.stats()["backend"] == {"requested": "numba",
                                               "active": "numpy"}
        assert [compiled(x, key="k") for _ in range(3)] == ref_losses
        assert np.array_equal(w.grad, w_ref.grad)


# ----------------------------------------------------------------------
# numba kernel equivalence (runs only on the numba CI job)
# ----------------------------------------------------------------------
def _scatter_case(dtype, rows=40, cols=8, groups=7, seed=3):
    rng = np.random.default_rng(seed)
    values = rng.normal(size=(rows, cols)).astype(dtype)
    # Include an empty group and duplicate hits.
    group_ids = rng.integers(0, groups - 1, size=rows)
    params = {"groups": group_ids, "num_groups": groups}
    return values, params


@needs_numba
@pytest.mark.parametrize("dtype", [np.float32, np.float64])
@pytest.mark.parametrize("prim_name", ["scatter_sum", "scatter_mean",
                                       "scatter_max"])
def test_numba_scatter_kernels_match_numpy(prim_name, dtype):
    prim = {"scatter_sum": F._SCATTER_SUM, "scatter_mean": F._SCATTER_MEAN,
            "scatter_max": F._SCATTER_MAX}[prim_name]
    backend = backends.get_backend("numba")
    fwd = backend.fwd_kernel(prim)
    vjp = backend.vjp_kernel(prim)
    assert fwd is not None and vjp is not None

    values, params = _scatter_case(dtype)
    ref_data, ref_ctx = prim.fwd((values,), params, True, None)
    nb_data, nb_ctx = fwd((values,), params, True, None)
    tol = 1e-5 if dtype is np.float32 else 1e-12
    np.testing.assert_allclose(nb_data, ref_data, rtol=tol, atol=tol)

    grad = np.random.default_rng(9).normal(
        size=ref_data.shape).astype(dtype)
    (ref_grad,) = prim.vjp(ref_ctx, grad, (True,), params)
    (nb_grad,) = vjp(nb_ctx, grad, (True,), params)
    np.testing.assert_allclose(nb_grad, ref_grad, rtol=tol, atol=tol)


@needs_numba
@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_numba_sigmoid_matches_numpy(dtype):
    backend = backends.get_backend("numba")
    fwd = backend.fwd_kernel(F._SIGMOID)
    x = np.linspace(-600.0, 600.0, 101, dtype=dtype).reshape(1, -1)
    ref_data, _ = F._SIGMOID.fwd((x,), {}, False, None)
    nb_data, _ = fwd((x,), {}, False, None)
    tol = 1e-6 if dtype is np.float32 else 1e-14
    np.testing.assert_allclose(nb_data, ref_data, rtol=tol, atol=tol)


@needs_numba
def test_numba_scatter_rows_override_matches_add_at():
    backend = backends.get_backend("numba")
    rng = np.random.default_rng(1)
    values = rng.normal(size=(30, 5)).astype(np.float64)
    idx = rng.integers(0, 9, size=30)
    expected = np.zeros((9, 5))
    np.add.at(expected, idx, values)
    out = np.zeros((9, 5))
    backend.scatter_add_rows(out, idx, values)
    np.testing.assert_allclose(out, expected, rtol=1e-12)


@needs_numba
@pytest.mark.parametrize("dtype", [np.float32, np.float64])
@pytest.mark.parametrize("seed", range(4))
def test_numba_chain_matches_eager(dtype, seed):
    rng = np.random.default_rng(seed)
    names = list(rng.choice(sorted(CHAIN_OPS), size=rng.integers(1, 6)))
    xs = rng.normal(size=(3, 6, 4)).astype(dtype)

    w_eager = _weight(dtype)
    step = _chain_step(names, w_eager)
    eager_losses = [step(x) for x in xs]
    eager_grad = w_eager.grad.copy()

    w_comp = _weight(dtype)
    compiled = CompiledStep(_chain_step(names, w_comp), backend="numba")
    losses = [compiled(x, key="k") for x in xs]
    assert any(k is not None for k in _fused_kernels(compiled, "k"))
    tol = 1e-5 if dtype is np.float32 else 1e-12
    np.testing.assert_allclose(losses, eager_losses, rtol=tol)
    np.testing.assert_allclose(w_comp.grad, eager_grad, rtol=tol, atol=tol)


@needs_numba
def test_numba_warmup_compiles_table():
    backends.get_backend("numba").warmup()
