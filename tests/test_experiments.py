"""Integration tests for the experiment runners (tiny scale)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (EXPERIMENTS, SCALES, Cell, ExperimentResult,
                               PretrainCache, aggregate, run_experiment)


class TestPlumbing:
    def test_registry_covers_every_paper_artifact(self):
        expected = {"table4", "table5_6", "table7", "table8", "table9",
                    "table10", "table11", "figure5", "figure6", "figure7",
                    "figure8", "ablations"}
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("table99")

    def test_scales_defined(self):
        assert {"tiny", "default", "full"} <= set(SCALES)

    def test_aggregate_mean_std(self):
        cell = aggregate([0.5, 0.7])
        assert cell.mean == pytest.approx(0.6)
        assert cell.std == pytest.approx(0.1)
        assert cell.n_seeds == 2
        assert "±" in str(cell)

    def test_aggregate_handles_nan(self):
        cell = aggregate([0.5, float("nan")])
        assert cell.mean == pytest.approx(0.5)

    def test_result_table_and_lookup(self):
        result = ExperimentResult(experiment="demo", columns=["a", "b"])
        result.add_row(a="x", b=aggregate([1.0]))
        table = result.format_table()
        assert "demo" in table and "x" in table
        assert result.cell("b", a="x").mean == 1.0
        with pytest.raises(KeyError):
            result.cell("b", a="missing")

    def test_pretrain_cache_memoises(self):
        cache = PretrainCache()
        calls = []
        cache.get(("k",), lambda: calls.append(1) or "v")
        cache.get(("k",), lambda: calls.append(1) or "v")
        assert len(calls) == 1


class TestRunnersTiny:
    """Each runner must complete and emit the expected row structure."""

    def test_dataset_stats(self):
        result = run_experiment("table5_6", scale="tiny", verbose=False)
        datasets = {row["dataset"] for row in result.rows}
        assert "meituan" in datasets
        assert any(d.startswith("amazon/") for d in datasets)
        assert all(row["# Edges"] > 0 for row in result.rows)

    def test_table4_orders_strategy_cost(self):
        result = run_experiment("table4", scale="tiny", verbose=False)
        times = {row["strategy"]: row["seconds/epoch"] for row in result.rows}
        assert set(times) == {"full", "eie-mean", "eie-attn", "eie-gru"}
        assert all(v > 0 for v in times.values())
        # EIE-GRU fuses L checkpoints sequentially: strictly more work
        # than plain full fine-tuning.
        assert times["eie-gru"] > times["full"]

    def test_table8_rows(self):
        result = run_experiment("table8", scale="tiny",
                                backbones=("jodie",), verbose=False)
        methods = [row["method"] for row in result.rows]
        assert methods == ["jodie", "cpdg(jodie)"]
        for row in result.rows:
            assert isinstance(row["AUC"], Cell)

    def test_table7_slice(self):
        result = run_experiment(
            "table7", scale="tiny", settings=("time",),
            methods=("tgn", "cpdg(tgn)"),
            targets=(("amazon", "beauty", "arts"),), verbose=False)
        assert len(result.rows) == 2
        assert {row["method"] for row in result.rows} == {"tgn", "cpdg(tgn)"}

    def test_table9_slice(self):
        result = run_experiment("table9", scale="tiny",
                                datasets=("mooc",),
                                methods=("jodie", "cpdg(jodie)"),
                                verbose=False)
        assert len(result.rows) == 2
        for row in result.rows:
            assert np.isnan(row["AUC"].mean) or 0.0 <= row["AUC"].mean <= 1.0

    def test_table10_slice(self):
        result = run_experiment(
            "table10", scale="tiny",
            targets=(("amazon", "beauty", "arts"),), verbose=False)
        methods = [row["method"] for row in result.rows]
        assert methods[0] == "No Pre-train"
        assert "CPDG (T)" in methods
        assert len(result.rows) == 4

    def test_table11_strategies(self):
        result = run_experiment("table11", scale="tiny", fields=("beauty",),
                                verbose=False)
        strategies = [row["strategy"] for row in result.rows]
        assert strategies == ["Full", "EIE-mean", "EIE-attn", "EIE-GRU"]

    def test_figure6_beta_series(self):
        result = run_experiment("figure6", scale="tiny", fields=("beauty",),
                                betas=(0.1, 0.9), verbose=False)
        betas = [row["beta"] for row in result.rows]
        assert betas == [0.1, 0.9]

    def test_figure7_grid(self):
        result = run_experiment("figure7", scale="tiny", widths=(2,),
                                depths=(1, 2), verbose=False)
        assert len(result.rows) == 2
        assert {row["depth"] for row in result.rows} == {1, 2}

    def test_figure8_lengths(self):
        result = run_experiment("figure8", scale="tiny",
                                datasets=("mooc",), lengths=(1, 3),
                                verbose=False)
        assert [row["L"] for row in result.rows] == [1, 3]

    def test_figure5_variants(self):
        result = run_experiment("figure5", scale="tiny", verbose=False)
        variants = {row["variant"] for row in result.rows}
        assert variants == {"CPDG", "w/o TC", "w/o SC", "w/o EIE"}
        datasets = {row["dataset"] for row in result.rows}
        assert datasets == {"beauty", "luxury", "wikipedia", "reddit"}
