"""Chaos suite for the distributed batch-production fabric.

The contract: however workers crash, stall, hoard leases, join late or
mount the wrong shards, the consumer sees every batch exactly once, in
plan order, bit-identical to the in-process serial producer — or gets a
clear error.  Range-sharded CSR must answer every finder query exactly
like the in-memory adjacency, while memory-mapping only the node ranges
actually touched.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.core import CPDGPreTrainer
from repro.fabric import (PROTOCOL_VERSION, FabricError, FabricProducer,
                          FabricWorker, FrameDecoder, LeaseLedger,
                          encode_frame, parse_address, plan_fingerprint,
                          recv_frame, send_frame)
from repro.fabric.protocol import (HEARTBEAT, HELLO, LEASE, REJECT, RESULT,
                                   SHUTDOWN, WELCOME)
from repro.graph.events import EventStream
from repro.graph.neighbor_finder import NeighborFinder
from repro.stream import (BatchPlan, SamplingContext, SerialProducer,
                          ShardedColumn, StreamError, export_graph_shards,
                          export_range_shards, open_range_shard,
                          open_range_sharded_finder, produce_batch,
                          shard_fingerprint)
from tests.test_stream_pipeline import (assert_prepared_equal, make_stream,
                                        small_config, spec_for)


def exported(stream, directory, num_ranges=4) -> str:
    finder = NeighborFinder(stream)
    export_graph_shards(stream, str(directory), finder=finder)
    export_range_shards(finder, str(directory), num_ranges=num_ranges)
    return str(directory)


def locality_stream(num_blocks=4, events_per_block=60,
                    nodes_per_block=10) -> EventStream:
    """Events confined to disjoint node blocks, chronologically blocked —
    a batch's sampling frontier stays inside its blocks' ranges."""
    src, dst, ts = [], [], []
    t0 = 0.0
    for b in range(num_blocks):
        rng = np.random.default_rng(b)
        lo = b * nodes_per_block
        half = nodes_per_block // 2
        src.append(rng.integers(lo, lo + half, events_per_block))
        dst.append(rng.integers(lo + half, lo + nodes_per_block,
                                events_per_block))
        ts.append(np.sort(rng.uniform(t0, t0 + 100.0, events_per_block)))
        t0 += 100.0
    return EventStream(src=np.concatenate(src), dst=np.concatenate(dst),
                       timestamps=np.concatenate(ts),
                       num_nodes=num_blocks * nodes_per_block,
                       name="locality")


class WorkerHarness:
    """Run FabricWorkers on threads; collect stats and surface errors."""

    def __init__(self, address, shard_dir):
        self.address = address
        self.shard_dir = shard_dir
        self.threads: list[threading.Thread] = []
        self.stats: dict[str, dict] = {}
        self.errors: dict[str, BaseException] = {}

    def start(self, name, *, delay=0.0, max_results=None, **kwargs):
        kwargs.setdefault("capacity", 2)
        kwargs.setdefault("retry_for", 30.0)

        def run():
            if delay:
                time.sleep(delay)
            worker = FabricWorker(self.address, self.shard_dir,
                                  name=name, **kwargs)
            try:
                self.stats[name] = worker.run(max_results=max_results)
            except BaseException as exc:  # surfaced by join()
                self.errors[name] = exc

        thread = threading.Thread(target=run, daemon=True,
                                  name=f"harness-{name}")
        thread.start()
        self.threads.append(thread)
        return thread

    def join(self, timeout=15.0, expect_errors=False):
        for thread in self.threads:
            thread.join(timeout)
        assert not any(t.is_alive() for t in self.threads), \
            "worker thread(s) did not finish"
        if not expect_errors:
            assert not self.errors, self.errors


def run_fabric(spec, *, workers, prefetch=6, lease_timeout=15.0,
               heartbeat_timeout=10.0, timeout=60.0):
    """Drive a FabricProducer to completion with harness workers.

    ``workers`` is a list of dicts of ``WorkerHarness.start`` kwargs
    (plus ``name``).  Returns (batches, coordinator stats, harness).
    """
    producer = FabricProducer(spec, prefetch_batches=prefetch,
                              lease_timeout=lease_timeout,
                              heartbeat_timeout=heartbeat_timeout,
                              timeout=timeout)
    harness = WorkerHarness(producer.address, producer.shard_dir)
    try:
        for worker in workers:
            harness.start(**worker)
        batches = list(producer)
        stats = producer.stats()
    finally:
        producer.close()
    return batches, stats, harness


# ----------------------------------------------------------------------
# range-sharded CSR
# ----------------------------------------------------------------------

class TestRangeShards:
    def test_finder_equivalence_over_range_shards(self, tmp_path):
        stream = make_stream()
        full = NeighborFinder(stream)
        exported(stream, tmp_path)
        sharded = open_range_sharded_finder(str(tmp_path))

        rng = np.random.default_rng(7)
        nodes = rng.integers(0, stream.num_nodes, 64)
        ts = rng.uniform(0.0, 120.0, 64)
        np.testing.assert_array_equal(full.batch_degree(nodes, ts),
                                      sharded.batch_degree(nodes, ts))
        for a, b in zip(full.batch_most_recent(nodes, ts, 5),
                        sharded.batch_most_recent(nodes, ts, 5)):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(
            full.batch_last_update(nodes, stream.num_events // 2),
            sharded.batch_last_update(nodes, stream.num_events // 2))
        for node in (0, 17, stream.num_nodes - 1):
            for a, b in zip(full.before(node, 60.0),
                            sharded.before(node, 60.0)):
                np.testing.assert_array_equal(a, b)

    def test_produce_batch_equivalence_over_range_shards(self, tmp_path):
        stream = make_stream()
        cfg = small_config()
        spec = spec_for(stream, cfg)
        exported(stream, tmp_path)
        remote_spec = replace(spec, stream=None, shard_dir=str(tmp_path))
        ctx = SamplingContext(
            remote_spec, finder=open_range_sharded_finder(str(tmp_path)))
        plan = spec.make_plan(stream.num_events)
        baseline = SamplingContext(spec)
        for item in plan:
            assert_prepared_equal(produce_batch(baseline, item),
                                  produce_batch(ctx, item))

    def test_sharded_column_matches_flat_indexing(self, tmp_path):
        stream = make_stream()
        finder = NeighborFinder(stream)
        export_graph_shards(stream, str(tmp_path), finder=finder)
        export_range_shards(finder, str(tmp_path), num_ranges=5)
        sharded = open_range_sharded_finder(str(tmp_path))
        flat = np.asarray(finder.neighbors)
        column = sharded.neighbors
        assert isinstance(column, ShardedColumn)
        assert len(column) == len(flat)
        rng = np.random.default_rng(1)
        fancy1d = rng.integers(0, len(flat), 40)
        fancy2d = rng.integers(0, len(flat), (8, 5))
        np.testing.assert_array_equal(column[3:17], flat[3:17])
        np.testing.assert_array_equal(column[fancy1d], flat[fancy1d])
        np.testing.assert_array_equal(column[fancy2d], flat[fancy2d])
        assert column[len(flat) - 1] == flat[-1]
        np.testing.assert_array_equal(np.asarray(column), flat)

    def test_open_single_range_shard(self, tmp_path):
        stream = make_stream()
        exported(stream, tmp_path, num_ranges=4)
        shard = open_range_shard(str(tmp_path), 0)
        assert shard.node_lo == 0 and shard.node_hi > 0
        assert len(shard.indptr) == shard.node_hi - shard.node_lo + 1
        assert shard.indptr[0] == 0
        assert len(shard.neighbors) == shard.indptr[-1]

    def test_laziness_only_touched_ranges_open(self, tmp_path):
        stream = locality_stream()
        exported(stream, tmp_path, num_ranges=4)
        spec = replace(
            spec_for(stream, small_config(batch_size=60, epochs=1)),
            stream=None, shard_dir=str(tmp_path),
            sample_structural=False)  # structural roots are stream-wide
        finder = open_range_sharded_finder(str(tmp_path))
        ctx = SamplingContext(spec, finder=finder)
        plan = spec.make_plan(stream.num_events)
        produce_batch(ctx, plan.item(0))  # events of node block 0 only
        opened = finder.range_store.opened
        total = len(finder.range_store.node_bounds) - 1
        assert opened, "nothing opened — laziness test is vacuous"
        assert len(opened) < total, \
            f"batch confined to one node block opened all {total} ranges"

    def test_fingerprint_tracks_content(self, tmp_path):
        stream = make_stream()
        exported(stream, tmp_path)
        before = shard_fingerprint(str(tmp_path))
        assert before == shard_fingerprint(str(tmp_path))
        target = next(tmp_path.glob("csr_range0000_*.npy"))
        blob = bytearray(target.read_bytes())
        blob[-1] ^= 0xFF
        target.write_bytes(bytes(blob))
        assert shard_fingerprint(str(tmp_path)) != before


# ----------------------------------------------------------------------
# wire protocol
# ----------------------------------------------------------------------

class TestProtocol:
    def test_frame_round_trip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            message = {"type": RESULT, "seq": 3,
                       "payload": np.arange(5, dtype=np.int64)}
            send_frame(a, message)
            send_frame(a, {"type": HEARTBEAT})
            got = recv_frame(b)
            assert got["type"] == RESULT and got["seq"] == 3
            np.testing.assert_array_equal(got["payload"], np.arange(5))
            assert recv_frame(b)["type"] == HEARTBEAT
            a.close()
            assert recv_frame(b) is None  # clean EOF at a boundary
        finally:
            for sock in (a, b):
                sock.close()

    def test_eof_mid_frame_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(encode_frame({"type": HEARTBEAT})[:5])
            a.close()
            with pytest.raises(FabricError, match="mid-frame"):
                recv_frame(b)
        finally:
            for sock in (a, b):
                sock.close()

    def test_decoder_reassembles_byte_by_byte(self):
        frames = [{"type": LEASE, "n": i} for i in range(3)]
        wire = b"".join(encode_frame(f) for f in frames)
        decoder = FrameDecoder()
        out = []
        for i in range(len(wire)):
            out.extend(decoder.feed(wire[i:i + 1]))
        assert out == frames

    def test_parse_address(self):
        assert parse_address("10.0.0.5:9000") == ("10.0.0.5", 9000)
        assert parse_address(":9000") == ("127.0.0.1", 9000)
        for bad in ("nohost", "host:notaport", "host:99999"):
            with pytest.raises(FabricError):
                parse_address(bad)

    def test_plan_fingerprint_ignores_graph_location(self):
        stream = make_stream()
        spec = spec_for(stream, small_config())
        plan = spec.make_plan(stream.num_events)
        base = plan_fingerprint(replace(spec, stream=None), plan, "fp")
        moved = replace(spec, stream=None, shard_dir="/elsewhere",
                        mmap=False)
        assert plan_fingerprint(moved, plan, "fp") == base
        assert plan_fingerprint(replace(spec, stream=None, seed=spec.seed + 1),
                                plan, "fp") != base
        assert plan_fingerprint(replace(spec, stream=None), plan,
                                "other") != base


# ----------------------------------------------------------------------
# lease ledger
# ----------------------------------------------------------------------

def _plan(total=10):
    return BatchPlan(num_events=total * 10, batch_size=10, epochs=1, seed=0)


class TestLeaseLedger:
    def test_grants_in_seq_order_within_window(self):
        ledger = LeaseLedger(_plan(), window=3)
        items = [ledger.grant("w", 0.0, 10.0) for _ in range(4)]
        assert [i.seq for i in items[:3]] == [0, 1, 2]
        assert items[3] is None  # window exhausted
        ledger.complete(0, "w")
        ledger.advance(0)
        assert ledger.grant("w", 0.0, 10.0).seq == 3

    def test_duplicate_completion_counted_and_dropped(self):
        ledger = LeaseLedger(_plan(), window=10)
        ledger.grant("a", 0.0, 10.0)
        assert ledger.complete(0, "a") is True
        assert ledger.complete(0, "b") is False
        assert ledger.counters.duplicates == 1
        assert ledger.counters.completed == 1

    def test_expired_lease_requeues_and_avoids_repeat(self):
        ledger = LeaseLedger(_plan(), window=10)
        assert ledger.grant("slow", 0.0, 1.0).seq == 0
        assert ledger.reclaim_expired(2.0) == [0]
        assert ledger.counters.reclaimed_expired == 1
        # With another worker available, seq 0 must not bounce back.
        assert ledger.grant("slow", 2.0, 1.0, avoid_repeat=True) is None
        assert ledger.grant("fresh", 2.0, 1.0, avoid_repeat=True).seq == 0
        # Alone in the fabric, the slow worker does get it back.
        assert ledger.reclaim_expired(4.0) == [0]
        assert ledger.grant("fresh", 4.0, 1.0, avoid_repeat=False).seq == 0

    def test_disconnect_reclaims_only_that_worker(self):
        ledger = LeaseLedger(_plan(), window=10)
        ledger.grant("a", 0.0, 10.0)
        ledger.grant("b", 0.0, 10.0)
        assert ledger.reclaim_worker("a", 1.0) == [0]
        assert ledger.outstanding("b") == 1
        assert ledger.counters.reclaimed_disconnect == 1
        assert ledger.counters.reclaim_log[-1][1] == "disconnect:a"

    def test_all_done(self):
        ledger = LeaseLedger(_plan(2), window=10)
        for seq in range(2):
            ledger.grant("w", 0.0, 10.0)
            ledger.complete(seq, "w")
            ledger.advance(seq)
        assert ledger.all_done and ledger.done_count == 2


# ----------------------------------------------------------------------
# fabric chaos (thread workers over real sockets)
# ----------------------------------------------------------------------

class TestFabricChaos:
    def serial(self, stream):
        return list(SerialProducer(spec_for(stream, small_config())))

    def test_two_workers_bit_identical(self):
        stream = make_stream()
        batches, stats, harness = run_fabric(
            spec_for(stream, small_config()),
            workers=[{"name": "a"}, {"name": "b"}])
        harness.join()
        reference = self.serial(stream)
        assert len(batches) == len(reference)
        for a, b in zip(reference, batches):
            assert_prepared_equal(a, b)
        assert stats["duplicates"] == 0
        produced = sum(s["produced"] for s in harness.stats.values())
        assert produced == len(reference)  # work actually split

    def test_worker_killed_mid_epoch_work_reclaimed(self):
        stream = make_stream()
        batches, stats, harness = run_fabric(
            spec_for(stream, small_config()),
            workers=[{"name": "doomed", "max_results": 2},
                     {"name": "survivor", "delay": 0.2}])
        harness.join()
        reference = self.serial(stream)
        assert len(batches) == len(reference)
        for a, b in zip(reference, batches):
            assert_prepared_equal(a, b)
        assert harness.stats["doomed"]["graceful"] is False
        assert stats["reclaimed_disconnect"] >= 1
        assert any(reason.startswith("disconnect:doomed")
                   for _, reason, _ in stats["reclaim_log"])

    def test_late_joining_worker_completes_run(self):
        stream = make_stream()
        batches, stats, harness = run_fabric(
            spec_for(stream, small_config()),
            workers=[{"name": "late", "delay": 1.0}])
        harness.join()
        reference = self.serial(stream)
        assert len(batches) == len(reference)
        for a, b in zip(reference, batches):
            assert_prepared_equal(a, b)
        assert stats["workers_joined"] == 1

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        stream = make_stream()
        producer = FabricProducer(spec_for(stream, small_config()),
                                  timeout=30.0)
        try:
            # Raw socket with a bogus shard fingerprint → REJECT.
            sock = socket.create_connection(producer.address, timeout=5.0)
            try:
                send_frame(sock, {"type": HELLO,
                                  "version": PROTOCOL_VERSION,
                                  "name": "impostor", "capacity": 1,
                                  "shard_fingerprint": "deadbeef"})
                reply = recv_frame(sock)
                assert reply["type"] == REJECT
                assert "fingerprint" in reply["reason"]
            finally:
                sock.close()
            # A real worker mounting a *different* graph's export is
            # rejected the same way and raises client-side.
            other = make_stream(seed=99)
            exported(other, tmp_path)
            with pytest.raises(FabricError, match="rejected"):
                FabricWorker(producer.address, str(tmp_path),
                             name="wrong-shards").run()
            stats = producer.stats()
            assert stats["workers_rejected"] == 2
            # The run itself still completes once a good worker joins.
            harness = WorkerHarness(producer.address, producer.shard_dir)
            harness.start("good")
            batches = list(producer)
        finally:
            producer.close()
        harness.join()
        assert len(batches) == len(self.serial(stream))

    def test_version_mismatch_rejected(self):
        stream = make_stream()
        producer = FabricProducer(spec_for(stream, small_config()),
                                  timeout=30.0)
        try:
            sock = socket.create_connection(producer.address, timeout=5.0)
            try:
                send_frame(sock, {"type": HELLO, "version": -1,
                                  "shard_fingerprint": "x"})
                reply = recv_frame(sock)
                assert reply["type"] == REJECT
                assert "version" in reply["reason"]
            finally:
                sock.close()
        finally:
            producer.close()

    def test_duplicate_result_deduped(self):
        """A client that answers its first lease twice: the consumer
        still sees each seq once and the duplicate is counted."""
        stream = make_stream()
        spec = spec_for(stream, small_config())
        producer = FabricProducer(spec, prefetch_batches=6, timeout=60.0)
        doubled = threading.Event()

        def double_talker():
            sock = socket.create_connection(producer.address, timeout=5.0)
            try:
                send_frame(sock, {
                    "type": HELLO, "version": PROTOCOL_VERSION,
                    "name": "echo", "capacity": 1,
                    "shard_fingerprint":
                        shard_fingerprint(producer.shard_dir)})
                welcome = recv_frame(sock)
                assert welcome["type"] == WELCOME
                ctx = SamplingContext(replace(
                    welcome["spec"], shard_dir=producer.shard_dir))
                while True:
                    message = recv_frame(sock)
                    if message is None or message["type"] == SHUTDOWN:
                        return
                    if message["type"] != LEASE:
                        continue
                    item = message["item"]
                    batch = produce_batch(ctx, item).materialize()
                    send_frame(sock, {"type": RESULT, "seq": item.seq,
                                      "batch": batch})
                    if not doubled.is_set():
                        send_frame(sock, {"type": RESULT, "seq": item.seq,
                                          "batch": batch})
                        doubled.set()
            finally:
                sock.close()

        thread = threading.Thread(target=double_talker, daemon=True)
        thread.start()
        try:
            batches = list(producer)
            stats = producer.stats()
        finally:
            producer.close()
        thread.join(10.0)
        reference = self.serial(stream)
        assert [b.seq for b in batches] == [r.seq for r in reference]
        for a, b in zip(reference, batches):
            assert_prepared_equal(a, b)
        assert stats["duplicates"] == 1

    def test_expired_lease_re_leased_to_other_worker(self):
        """A hoarder heartbeats (stays 'alive') but never completes; its
        leases expire and a healthy worker finishes the plan."""
        stream = make_stream()
        spec = spec_for(stream, small_config())
        producer = FabricProducer(spec, prefetch_batches=6,
                                  lease_timeout=0.5,
                                  heartbeat_timeout=30.0, timeout=60.0)
        stop = threading.Event()

        def hoarder():
            sock = socket.create_connection(producer.address, timeout=5.0)

            def beat():  # stays "alive" for the coordinator
                while not stop.wait(0.2):
                    try:
                        send_frame(sock, {"type": HEARTBEAT})
                    except OSError:
                        return

            try:
                send_frame(sock, {
                    "type": HELLO, "version": PROTOCOL_VERSION,
                    "name": "hoarder", "capacity": 2,
                    "shard_fingerprint":
                        shard_fingerprint(producer.shard_dir)})
                threading.Thread(target=beat, daemon=True).start()
                while not stop.is_set():
                    try:
                        message = recv_frame(sock)
                    except (FabricError, OSError):
                        return
                    if message is None or message.get("type") == SHUTDOWN:
                        return
                    # swallow leases, never answer
            finally:
                sock.close()

        thread = threading.Thread(target=hoarder, daemon=True)
        thread.start()
        harness = WorkerHarness(producer.address, producer.shard_dir)
        try:
            harness.start("healthy", delay=0.3)
            batches = list(producer)
            stats = producer.stats()
        finally:
            stop.set()
            producer.close()
        thread.join(10.0)
        harness.join()
        reference = self.serial(stream)
        assert len(batches) == len(reference)
        for a, b in zip(reference, batches):
            assert_prepared_equal(a, b)
        assert stats["reclaimed_expired"] >= 1

    def test_stall_without_workers_raises_with_hint(self):
        stream = make_stream()
        producer = FabricProducer(spec_for(stream, small_config()),
                                  timeout=1.0)
        with pytest.raises(StreamError, match="fabric-worker"):
            list(producer)

    def test_worker_production_error_aborts_run(self, monkeypatch):
        """Production failure on a worker sends ERROR and aborts the run
        with the worker's traceback, instead of stalling forever."""
        stream = make_stream()
        producer = FabricProducer(spec_for(stream, small_config()),
                                  timeout=30.0)

        def boom(ctx, item):
            raise RuntimeError("synthetic production failure")

        monkeypatch.setattr("repro.fabric.worker.produce_batch", boom)

        def boomer():
            try:
                FabricWorker(producer.address, producer.shard_dir,
                             name="boomer").run()
            except Exception:
                pass  # the worker re-raises after reporting; expected

        thread = threading.Thread(target=boomer, daemon=True)
        thread.start()
        try:
            with pytest.raises(StreamError, match="synthetic production"):
                list(producer)
        finally:
            producer.close()
        thread.join(10.0)


# ----------------------------------------------------------------------
# end-to-end pretraining acceptance (the ISSUE bar)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("backbone", ["tgn", "jodie", "dyrep"])
class TestFabricPretrainAcceptance:
    def pretrain(self, backbone, stream, **overrides):
        cfg = small_config(**overrides)
        trainer = CPDGPreTrainer.from_backbone(backbone, stream.num_nodes,
                                               cfg)
        return trainer.pretrain(stream)

    def test_fabric_bit_identical_under_chaos(self, backbone, tmp_path):
        """Two workers — one killed mid-run, one joining late — against
        the serial reference: loss history and final state identical."""
        stream = make_stream()
        reference = self.pretrain(backbone, stream, num_workers=0)

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        shard_dir = str(tmp_path / "shards")
        harness = WorkerHarness(("127.0.0.1", port), shard_dir)
        harness.start("doomed", delay=0.2, max_results=2)
        harness.start("late", delay=0.6)
        result = self.pretrain(backbone, stream,
                               fabric=f"127.0.0.1:{port}",
                               shard_dir=shard_dir,
                               fabric_lease_timeout=15.0)
        harness.join()

        np.testing.assert_array_equal(np.asarray(reference.loss_history),
                                      np.asarray(result.loss_history))
        np.testing.assert_array_equal(reference.memory_state,
                                      result.memory_state)
        np.testing.assert_array_equal(reference.last_update,
                                      result.last_update)
        for key in reference.encoder_state:
            np.testing.assert_array_equal(reference.encoder_state[key],
                                          result.encoder_state[key],
                                          err_msg=key)
        assert harness.stats["doomed"]["graceful"] is False
