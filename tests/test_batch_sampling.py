"""Batched-vs-reference equivalence for the CSR sampling engine.

Property tests (hypothesis over random event streams) asserting that the
vectorized batch queries — ``batch_before`` / ``batch_most_recent`` /
``batch_sample_uniform`` — and the whole-frontier ``sample_batch`` kernels
agree with the per-node reference implementations element-for-element,
including empty-history and all-padded rows.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (EpsilonDFSSampler, EtaBFSSampler, PrecomputedSampler,
                        SubgraphBatch)
from repro.graph import EventStream, NeighborFinder
from repro.nn import Tensor
from repro.nn import functional as F


def random_stream(seed: int, num_nodes: int, num_events: int) -> EventStream:
    rng = np.random.default_rng(seed)
    return EventStream(
        src=rng.integers(0, num_nodes, num_events),
        dst=rng.integers(0, num_nodes, num_events),
        timestamps=np.sort(rng.random(num_events) * 100.0),
        num_nodes=num_nodes,
    )


def random_queries(seed: int, num_nodes: int, batch: int
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Query rows spanning empty histories (t near 0) to full ones."""
    rng = np.random.default_rng(seed + 1)
    nodes = rng.integers(0, num_nodes, batch)
    ts = rng.random(batch) * 130.0  # beyond t_max to cover full histories
    ts[: batch // 4] = 0.0          # guaranteed all-padded rows
    return nodes, ts


stream_params = st.tuples(
    st.integers(min_value=0, max_value=2 ** 31 - 1),   # seed
    st.integers(min_value=2, max_value=40),            # num_nodes
    st.integers(min_value=0, max_value=300),           # num_events
)


class TestBatchQueries:
    @settings(max_examples=25, deadline=None)
    @given(stream_params)
    def test_batch_before_matches_per_node(self, params):
        seed, num_nodes, num_events = params
        finder = NeighborFinder(random_stream(seed, num_nodes, num_events))
        nodes, ts = random_queries(seed, num_nodes, 32)
        starts, ends = finder.batch_before(nodes, ts)
        for i in range(len(nodes)):
            neighbors, times, events = finder.before(int(nodes[i]), float(ts[i]))
            np.testing.assert_array_equal(
                neighbors, finder.neighbors[starts[i]:ends[i]])
            np.testing.assert_array_equal(
                times, finder.times[starts[i]:ends[i]])
            np.testing.assert_array_equal(
                events, finder.event_ids[starts[i]:ends[i]])
            assert ends[i] - starts[i] == finder.degree(int(nodes[i]), float(ts[i]))

    @settings(max_examples=25, deadline=None)
    @given(stream_params, st.integers(min_value=1, max_value=12))
    def test_batch_most_recent_matches_per_node(self, params, count):
        seed, num_nodes, num_events = params
        finder = NeighborFinder(random_stream(seed, num_nodes, num_events))
        nodes, ts = random_queries(seed, num_nodes, 32)
        out_n, out_t, out_e, mask = finder.batch_most_recent(nodes, ts, count)
        assert out_n.shape == out_t.shape == out_e.shape == mask.shape == (32, count)
        for i in range(len(nodes)):
            neighbors, times, events = finder.most_recent(
                int(nodes[i]), float(ts[i]), count)
            k = len(neighbors)
            # Left padding: zeros + True mask, valid suffix chronological.
            assert mask[i, :count - k].all()
            assert not mask[i, count - k:].any()
            np.testing.assert_array_equal(out_n[i, count - k:], neighbors)
            np.testing.assert_array_equal(out_t[i, count - k:], times)
            np.testing.assert_array_equal(out_e[i, count - k:], events)
            assert out_n[i, :count - k].sum() == 0

    @settings(max_examples=15, deadline=None)
    @given(stream_params)
    def test_batch_sample_uniform_draws_from_history(self, params):
        seed, num_nodes, num_events = params
        finder = NeighborFinder(random_stream(seed, num_nodes, num_events))
        nodes, ts = random_queries(seed, num_nodes, 32)
        rng = np.random.default_rng(0)
        out_n, out_t, out_e, mask = finder.batch_sample_uniform(nodes, ts, 6, rng)
        for i in range(len(nodes)):
            neighbors, times, events = finder.before(int(nodes[i]), float(ts[i]))
            if len(neighbors) == 0:
                assert mask[i].all()
                continue
            assert not mask[i].any()
            valid_events = set(events.tolist())
            assert set(out_e[i].tolist()) <= valid_events
            assert (out_t[i] < ts[i]).all()

    def test_empty_query_batch(self):
        finder = NeighborFinder(random_stream(1, 10, 50))
        none = np.empty(0, dtype=np.int64)
        no_ts = np.empty(0, dtype=np.float64)
        starts, ends = finder.batch_before(none, no_ts)
        assert len(starts) == len(ends) == 0
        out = finder.batch_most_recent(none, no_ts, 5)
        assert all(a.shape == (0, 5) for a in out)
        out = finder.batch_sample_uniform(none, no_ts, 5,
                                          np.random.default_rng(0))
        assert all(a.shape == (0, 5) for a in out)

    def test_empty_stream_all_padded(self):
        finder = NeighborFinder(EventStream(src=[], dst=[], timestamps=[],
                                            num_nodes=5))
        nodes = np.array([0, 3])
        ts = np.array([1.0, 2.0])
        starts, ends = finder.batch_before(nodes, ts)
        assert (starts == ends).all()
        _, _, _, mask = finder.batch_most_recent(nodes, ts, 4)
        assert mask.all()
        _, _, _, mask = finder.batch_sample_uniform(
            nodes, ts, 4, np.random.default_rng(0))
        assert mask.all()


class TestEpsilonDFSEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(stream_params, st.integers(min_value=1, max_value=5),
           st.integers(min_value=1, max_value=3))
    def test_sample_batch_matches_reference_exactly(self, params, epsilon, depth):
        seed, num_nodes, num_events = params
        finder = NeighborFinder(random_stream(seed, num_nodes, num_events))
        sampler = EpsilonDFSSampler(finder, epsilon=epsilon, depth=depth)
        nodes, ts = random_queries(seed, num_nodes, 24)
        batch = sampler.sample_batch(nodes, ts)
        assert len(batch) == 24
        for i in range(24):
            reference = sampler.sample_reference(int(nodes[i]), float(ts[i]))
            np.testing.assert_array_equal(batch.row(i), reference)

    def test_per_root_sample_is_batch_row(self):
        finder = NeighborFinder(random_stream(3, 30, 200))
        sampler = EpsilonDFSSampler(finder, epsilon=3, depth=2)
        np.testing.assert_array_equal(sampler.sample(5, 90.0),
                                      sampler.sample_batch(
                                          np.array([5]), np.array([90.0])).row(0))


class TestEtaBFSEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(stream_params, st.integers(min_value=1, max_value=3))
    def test_exhaustive_width_matches_reference_sets(self, params, depth):
        """With η ≥ every degree both paths select all neighbours, so the
        sampled node *sets* are deterministic and must coincide."""
        seed, num_nodes, num_events = params
        finder = NeighborFinder(random_stream(seed, num_nodes, num_events))
        sampler = EtaBFSSampler(finder, eta=1000, depth=depth,
                                probability="uniform", seed=0)
        nodes, ts = random_queries(seed, num_nodes, 16)
        batch = sampler.sample_batch(nodes, ts)
        for i in range(16):
            reference = sampler.sample_reference(int(nodes[i]), float(ts[i]))
            assert set(batch.row(i).tolist()) == set(reference.tolist())

    @settings(max_examples=15, deadline=None)
    @given(stream_params, st.sampled_from(["chronological", "reverse", "uniform"]))
    def test_batch_respects_width_time_and_root_exclusion(self, params, mode):
        seed, num_nodes, num_events = params
        finder = NeighborFinder(random_stream(seed, num_nodes, num_events))
        sampler = EtaBFSSampler(finder, eta=2, depth=1, probability=mode, seed=1)
        nodes, ts = random_queries(seed, num_nodes, 24)
        batch = sampler.sample_batch(nodes, ts)
        for i in range(24):
            row = batch.row(i)
            assert len(row) <= 2
            assert int(nodes[i]) not in row
            assert len(set(row.tolist())) == len(row)
            valid, _, _ = finder.before(int(nodes[i]), float(ts[i]))
            assert set(row.tolist()) <= set(valid.tolist())

    def test_chronological_distribution_matches_reference(self):
        """Gumbel top-k and sequential choice() draw the same marginals."""
        stream = EventStream(src=[0] * 5, dst=[1, 2, 3, 4, 5],
                             timestamps=[1.0, 2.0, 3.0, 4.0, 5.0], num_nodes=6)
        finder = NeighborFinder(stream)
        sampler = EtaBFSSampler(finder, eta=1, depth=1,
                                probability="chronological", tau=0.2, seed=0)
        trials = 4000
        batch = sampler.sample_batch(np.zeros(trials, dtype=np.int64),
                                     np.full(trials, 6.0))
        batch_counts = np.bincount(batch.nodes, minlength=6)
        ref_counts = np.zeros(6, dtype=np.int64)
        for _ in range(trials):
            for node in sampler.sample_reference(0, 6.0):
                ref_counts[node] += 1
        # Same expected frequencies: compare within 4-sigma of binomial noise.
        probs = ref_counts[1:] / trials
        sigma = np.sqrt(np.maximum(probs * (1 - probs) / trials, 1e-12))
        np.testing.assert_allclose(batch_counts[1:] / trials, probs,
                                   atol=float(4 * sigma.max()) + 0.01)

    def test_custom_callable_probability_still_works(self):
        finder = NeighborFinder(random_stream(9, 20, 150))

        def first_only(times, t, tau):
            probs = np.zeros(len(times))
            probs[0] = 1.0
            return probs

        sampler = EtaBFSSampler(finder, eta=3, depth=1,
                                probability=first_only, seed=0)
        nodes, ts = random_queries(9, 20, 12)
        batch = sampler.sample_batch(nodes, ts)
        for i in range(12):
            neighbors, _, _ = finder.before(int(nodes[i]), float(ts[i]))
            if len(neighbors) == 0:
                assert len(batch.row(i)) == 0
            else:
                expected = {int(neighbors[0])} - {int(nodes[i])}
                assert set(batch.row(i).tolist()) == expected


class TestUnderflowRegression:
    """`rng.choice(..., replace=False, p=probs)` used to raise when the
    Eq. 7/8 softmax underflowed to fewer non-zero entries than η."""

    def wide_spread_finder(self):
        # Times spread so far apart that softmax(recency / tau) underflows
        # everything except the favoured end at tau = 1e-5.
        stream = EventStream(src=[0] * 5, dst=[1, 2, 3, 4, 5],
                             timestamps=[1.0, 2.0, 3.0, 4.0, 5.0], num_nodes=6)
        return NeighborFinder(stream)

    @pytest.mark.parametrize("mode,survivor", [("chronological", 5),
                                               ("reverse", 1)])
    def test_draw_clamped_to_nonzero_support(self, mode, survivor):
        finder = self.wide_spread_finder()
        sampler = EtaBFSSampler(finder, eta=4, depth=1, probability=mode,
                                tau=1e-5, seed=0)
        for path in (sampler.sample, sampler.sample_reference):
            result = path(0, 6.0)
            assert result.tolist() == [survivor]

    @pytest.mark.parametrize("mode", ["chronological", "reverse"])
    def test_batch_draw_clamped(self, mode):
        finder = self.wide_spread_finder()
        sampler = EtaBFSSampler(finder, eta=4, depth=2, probability=mode,
                                tau=1e-5, seed=0)
        batch = sampler.sample_batch(np.zeros(8, dtype=np.int64),
                                     np.full(8, 6.0))
        assert all(len(batch.row(i)) >= 1 for i in range(8))


class TestSubgraphBatch:
    def test_roundtrip_from_list(self):
        subs = [np.array([3, 1]), np.array([], dtype=np.int64), np.array([2])]
        batch = SubgraphBatch.from_list(subs)
        assert len(batch) == 3
        assert batch.counts().tolist() == [2, 0, 1]
        assert batch.groups().tolist() == [0, 0, 2]
        for got, want in zip(batch, subs):
            np.testing.assert_array_equal(got, want)
        for got, want in zip(batch.to_list(), subs):
            np.testing.assert_array_equal(got, want)

    def test_empty_batch(self):
        batch = SubgraphBatch.from_list([])
        assert len(batch) == 0
        assert len(batch.nodes) == 0

    def test_readout_accepts_batch_and_list_identically(self):
        memory = Tensor(np.arange(20, dtype=float).reshape(5, 4))
        subs = [np.array([0, 2]), np.array([], dtype=np.int64), np.array([4])]
        batch = SubgraphBatch.from_list(subs)
        from repro.core import subgraph_readout
        for mode in ("mean", "max", "sum"):
            np.testing.assert_allclose(
                subgraph_readout(memory, batch, mode).data,
                subgraph_readout(memory, subs, mode).data)


class TestScatterPools:
    def test_scatter_sum_forward_backward(self):
        values = Tensor(np.arange(12, dtype=float).reshape(4, 3),
                        requires_grad=True)
        groups = np.array([0, 0, 2, 2])
        out = F.scatter_sum(values, groups, 3)
        np.testing.assert_allclose(out.data[0], values.data[:2].sum(axis=0))
        np.testing.assert_allclose(out.data[1], np.zeros(3))
        out.sum().backward()
        np.testing.assert_allclose(values.grad, np.ones((4, 3)))

    def test_scatter_max_matches_rowwise_max(self):
        rng = np.random.default_rng(0)
        values = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
        groups = np.array([0, 0, 0, 1, 1, 1])
        out = F.scatter_max(values, groups, 3)
        np.testing.assert_allclose(out.data[0], values.data[:3].max(axis=0))
        np.testing.assert_allclose(out.data[1], values.data[3:].max(axis=0))
        np.testing.assert_allclose(out.data[2], np.zeros(4))
        out.sum().backward()
        # Each column routes its unit gradient to the argmax row per group.
        np.testing.assert_allclose(values.grad.sum(axis=0), np.full(4, 2.0))

    def test_scatter_max_tie_gradient_splits(self):
        values = Tensor(np.ones((2, 3)), requires_grad=True)
        out = F.scatter_max(values, np.array([0, 0]), 1)
        out.sum().backward()
        np.testing.assert_allclose(values.grad, np.full((2, 3), 0.5))


class TestStructuralNegativeGuard:
    def test_single_node_graph_fails_fast(self):
        from repro.core import StructuralContrast
        stream = EventStream(src=[0], dst=[0], timestamps=[1.0], num_nodes=1)
        contrast = StructuralContrast(NeighborFinder(stream), epsilon=2,
                                      depth=1, seed=0)
        with pytest.raises(ValueError):
            contrast.sample_pairs(np.array([0]), np.array([2.0]), 1)


class TestPrecomputedBatch:
    def test_sample_batch_uses_cache(self):
        finder = NeighborFinder(random_stream(5, 25, 150))
        cached = PrecomputedSampler(EpsilonDFSSampler(finder, 3, 2))
        nodes, ts = random_queries(5, 25, 16)
        first = cached.sample_batch(nodes, ts)
        assert cached.misses == len(np.unique(
            [cached._key(r, t) for r, t in zip(nodes, ts)], axis=0))
        before_hits = cached.hits
        second = cached.sample_batch(nodes, ts)
        assert cached.hits == before_hits + 16
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_capacity_smaller_than_batch_still_returns_rows(self):
        finder = NeighborFinder(random_stream(7, 25, 150))
        online = EpsilonDFSSampler(finder, 3, 2)
        cached = PrecomputedSampler(EpsilonDFSSampler(finder, 3, 2),
                                    capacity=2)
        nodes, ts = random_queries(7, 25, 16)
        batch = cached.sample_batch(nodes, ts)   # must survive evictions
        reference = online.sample_batch(nodes, ts)
        assert cached.cache_size <= 2
        for a, b in zip(batch, reference):
            np.testing.assert_array_equal(a, b)

    def test_batch_matches_online(self):
        finder = NeighborFinder(random_stream(6, 25, 150))
        online = EpsilonDFSSampler(finder, 3, 2)
        cached = PrecomputedSampler(EpsilonDFSSampler(finder, 3, 2))
        nodes, ts = random_queries(6, 25, 16)
        batch = cached.sample_batch(nodes, ts)
        reference = online.sample_batch(nodes, ts)
        for a, b in zip(batch, reference):
            np.testing.assert_array_equal(a, b)
