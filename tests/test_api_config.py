"""Unit tests for the serialisable run configuration (repro.api.config)."""

from __future__ import annotations

import json

import pytest

from repro.api import (ConfigError, DataConfig, RunConfig, dataset_names,
                       normalize_task, parse_override, parse_set_args,
                       resolve_data)


class TestRoundTrip:
    def test_dict_round_trip_defaults(self):
        config = RunConfig()
        assert RunConfig.from_dict(config.to_dict()) == config

    def test_dict_round_trip_customised(self):
        config = RunConfig(
            backbone="jodie", task="node_classification", strategy="eie-attn",
            inductive=True,
            data=DataConfig(dataset="mooc", num_users=30, seed=5),
        )
        config = config.with_overrides({"pretrain.beta": 0.25,
                                        "finetune.epochs": 7})
        clone = RunConfig.from_dict(config.to_dict())
        assert clone == config
        assert clone.pretrain.beta == 0.25
        assert clone.finetune.epochs == 7

    def test_json_file_round_trip(self, tmp_path):
        config = RunConfig(strategy="full",
                           data=DataConfig(dataset="amazon:luxury",
                                           transfer="time+field"))
        path = tmp_path / "run.json"
        config.to_json(str(path))
        payload = json.loads(path.read_text())
        assert payload["strategy"] == "full"
        assert RunConfig.from_json(str(path)) == config

    def test_from_json_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError):
            RunConfig.from_json(str(path))

    def test_partial_dict_fills_defaults(self):
        config = RunConfig.from_dict({"backbone": "dyrep",
                                      "pretrain": {"beta": 0.9}})
        assert config.backbone == "dyrep"
        assert config.pretrain.beta == 0.9
        assert config.finetune == RunConfig().finetune


class TestUnknownKeyRejection:
    def test_top_level_unknown_key(self):
        with pytest.raises(ConfigError, match="bogus"):
            RunConfig.from_dict({"bogus": 1})

    def test_nested_unknown_key(self):
        with pytest.raises(ConfigError, match="pretrain"):
            RunConfig.from_dict({"pretrain": {"learning_rate": 0.1,
                                              "bogus": 1}})

    def test_section_must_be_mapping(self):
        with pytest.raises(ConfigError, match="mapping"):
            RunConfig.from_dict({"finetune": 3})

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigError):
            RunConfig.from_dict({"backbone": "transformer"})
        with pytest.raises(ConfigError):
            RunConfig.from_dict({"task": "regression"})
        with pytest.raises(ConfigError):
            RunConfig.from_dict({"strategy": "eie-lstm"})
        with pytest.raises(ConfigError):
            RunConfig.from_dict({"pretrain": {"beta": 2.0}})
        with pytest.raises(ConfigError):
            RunConfig.from_dict({"data": {"train_fraction": 0.9}})


class TestOverrides:
    def test_dotted_override_types(self):
        config = RunConfig().with_overrides({
            "pretrain.beta": 0.3,
            "finetune.epochs": 9,
            "data.dataset": "wikipedia",
            "inductive": True,
        })
        assert config.pretrain.beta == 0.3
        assert config.finetune.epochs == 9
        assert config.data.dataset == "wikipedia"
        assert config.inductive is True

    def test_override_is_functional(self):
        base = RunConfig()
        base.with_overrides({"pretrain.beta": 0.1})
        assert base.pretrain.beta == RunConfig().pretrain.beta

    def test_unknown_dotted_key_rejected(self):
        with pytest.raises(ConfigError, match="pretrain.bogus"):
            RunConfig().with_overrides({"pretrain.bogus": 1})
        with pytest.raises(ConfigError, match="nonsection"):
            RunConfig().with_overrides({"nonsection.beta": 1})

    def test_section_as_leaf_rejected(self):
        with pytest.raises(ConfigError, match="section"):
            RunConfig().with_overrides({"pretrain": 3})

    def test_parse_override_value_parsing(self):
        assert parse_override("pretrain.beta=0.3") == ("pretrain.beta", 0.3)
        assert parse_override("finetune.epochs=4") == ("finetune.epochs", 4)
        assert parse_override("inductive=true") == ("inductive", True)
        assert parse_override("data.seed=null") == ("data.seed", None)
        assert parse_override("data.dataset=mooc") == ("data.dataset", "mooc")

    def test_parse_override_requires_equals(self):
        with pytest.raises(ConfigError):
            parse_override("pretrain.beta")
        with pytest.raises(ConfigError):
            parse_override("=3")

    def test_parse_set_args_folds_repeats(self):
        overrides = parse_set_args(["pretrain.beta=0.1", "pretrain.beta=0.7",
                                    "backbone=jodie"])
        assert overrides == {"pretrain.beta": 0.7, "backbone": "jodie"}


class TestTasksAndData:
    def test_task_aliases(self):
        assert normalize_task("link") == "link_prediction"
        assert normalize_task("node") == "node_classification"
        assert normalize_task("link_prediction") == "link_prediction"
        with pytest.raises(ConfigError):
            normalize_task("ranking?")

    def test_dataset_names_cover_registry(self):
        names = dataset_names()
        assert "meituan" in names and "mooc" in names
        assert "amazon:beauty" in names and "gowalla:food" in names

    def test_resolve_fraction_split(self):
        data = DataConfig(dataset="meituan", num_users=20, num_items=15,
                          events_main=200, pretrain_fraction=0.5)
        resolved = resolve_data(data)
        total = (resolved.pretrain.num_events
                 + resolved.downstream.train.num_events
                 + resolved.downstream.val.num_events
                 + resolved.downstream.test.num_events)
        assert resolved.pretrain.num_events == pytest.approx(total / 2, abs=1)
        assert resolved.num_nodes == resolved.pretrain.num_nodes

    def test_resolve_transfer_split(self):
        data = DataConfig(dataset="amazon:beauty", transfer="time+field",
                          num_users=25, num_items=16, events_main=240,
                          events_source=300)
        resolved = resolve_data(data)
        # time+field pre-trains on the source field's early history.
        assert "arts" in resolved.pretrain.name
        assert resolved.downstream.test.num_events > 0

    def test_resolve_unknown_dataset(self):
        with pytest.raises(ConfigError, match="unknown dataset"):
            resolve_data(DataConfig(dataset="imdb"))
        with pytest.raises(ConfigError, match="universe"):
            resolve_data(DataConfig(dataset="netflix:horror"))
