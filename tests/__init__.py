"""Test package — lets test modules use ``from .conftest import ...``."""
