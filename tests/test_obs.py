"""The `repro.obs` subsystem: metrics registry, span tracing, report.

Load-bearing guarantees:

* counters never lose increments under concurrent threads and stay
  interchangeable with their integer value (the stats-object contract);
* histogram bucket edges follow Prometheus ``le`` semantics (a value
  equal to an edge lands in that edge's bucket) and the rendered text
  parses as valid exposition format;
* the disabled tracing path is a shared no-op singleton — no records,
  no allocations per span;
* a traced run writes well-formed JSONL that ``repro obs report`` can
  aggregate, and serve's ``GET /metrics`` reflects requests it just
  served.
"""

from __future__ import annotations

import json
import re
import threading

import numpy as np
import pytest

from repro import obs
from repro.api import PretrainArtifact, RunConfig, stream_fingerprint
from repro.core import CPDGConfig
from repro.core.pretrainer import CPDGPreTrainer
from repro.graph.events import EventStream
from repro.obs.metrics import DEFAULT_BUCKETS, Counter, Histogram
from repro.obs.trace import _NOOP
from repro.serve import EmbeddingService, HttpClient, start_http_server


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with tracing disabled and drained."""
    obs.reset()
    yield
    obs.reset()


# ======================================================================
# metrics registry
# ======================================================================

class TestCounter:

    def test_int_semantics(self):
        c = Counter("test_counter_total")
        c += 2
        c.inc(3)
        assert c == 5 and c != 4
        assert int(c) == 5 and float(c) == 5.0
        assert c + 1 == 6 and 10 - c == 5 and c / 2 == 2.5
        assert c > 4 and c >= 5 and c < 6 and bool(c)
        assert list(range(int(c)))[-1] == 4  # __index__

    def test_float_increments(self):
        c = Counter("test_seconds_total")
        c += 0.25
        c += 0.5
        assert float(c) == pytest.approx(0.75)

    def test_thread_safety(self):
        c = Counter("test_threaded_total")
        threads_n, per_thread = 8, 5000

        def hammer():
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=hammer)
                   for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert int(c) == threads_n * per_thread


class TestHistogram:

    def test_bucket_edges(self):
        h = Histogram("test_latency_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.1, 0.5, 1.0, 5.0):
            h.observe(value)
        # le-semantics: a value equal to an edge counts in that bucket.
        np.testing.assert_array_equal(h.bucket_counts(), [2, 2, 1])
        assert h.count == 5
        assert h.sum == pytest.approx(6.65)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("test_bad", buckets=(1.0, 0.1))

    def test_raw_ring_buffer_bounded(self):
        h = Histogram("test_ring_seconds", buckets=(1.0,))
        for i in range(1500):
            h.observe(float(i))
        assert h.count == 1500
        assert h.raw_samples().size == 1024  # ring keeps the newest 1024

    def test_summary_nearest_rank(self):
        h = Histogram("test_summary_seconds", buckets=DEFAULT_BUCKETS)
        for i in range(1, 101):
            h.observe(i / 1000.0)
        summary = h.summary()
        assert summary["p50"] == pytest.approx(0.050)
        assert summary["p99"] == pytest.approx(0.099)
        assert summary["max"] == pytest.approx(0.100)


class TestRegistry:

    def test_get_or_create_and_replace(self):
        a = obs.counter("test_registry_total", labels={"k": "v"})
        b = obs.counter("test_registry_total", labels={"k": "v"})
        assert a is b
        a += 3
        fresh = obs.counter("test_registry_total", labels={"k": "v"},
                            replace=True)
        assert fresh is not a and int(fresh) == 0

    def test_kind_conflict_raises(self):
        obs.counter("test_conflict_metric")
        with pytest.raises(ValueError):
            obs.gauge("test_conflict_metric")

    def test_snapshot_is_json_able(self):
        obs.counter("test_snap_total").inc(2)
        obs.histogram("test_snap_seconds").observe(0.01)
        snap = json.loads(json.dumps(obs.snapshot()))
        assert snap["test_snap_total"] == 2
        assert snap["test_snap_seconds"]["count"] == 1


class TestPrometheusText:

    # One exposition-format sample line: name{labels} value
    SAMPLE = re.compile(
        r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
        r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
        r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
        r' (-?[0-9.]+(e[+-]?[0-9]+)?|\+Inf|NaN)$')

    def test_output_parses(self):
        obs.counter("test_prom_total", labels={"worker": "w0"},
                    help="a counter").inc(7)
        obs.gauge("test_prom_depth", help="a gauge").set(2.5)
        hist = obs.histogram("test_prom_seconds", buckets=(0.1, 1.0),
                             help="a histogram")
        hist.observe(0.05)
        hist.observe(0.5)
        text = obs.render_prometheus()
        assert text.endswith("\n")
        for line in text.rstrip("\n").split("\n"):
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert self.SAMPLE.match(line), f"unparsable line: {line!r}"
        assert 'test_prom_total{worker="w0"} 7' in text
        assert "# TYPE test_prom_seconds histogram" in text

    def test_histogram_cumulative_buckets(self):
        hist = obs.histogram("test_cumul_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 2.0):
            hist.observe(value)
        text = obs.render_prometheus()
        assert 'test_cumul_seconds_bucket{le="0.1"} 1' in text
        assert 'test_cumul_seconds_bucket{le="1"} 2' in text
        assert 'test_cumul_seconds_bucket{le="+Inf"} 3' in text
        assert "test_cumul_seconds_count 3" in text

    def test_label_escaping(self):
        obs.counter("test_escape_total", labels={"path": 'a"b\\c'})
        text = obs.render_prometheus()
        assert r'path="a\"b\\c"' in text


class TestSummarizeLatencies:

    def test_nearest_rank(self):
        samples = [i / 10.0 for i in range(1, 101)]  # 0.1 .. 10.0
        summary = obs.summarize_latencies(samples)
        assert summary["count"] == 100
        assert summary["p50"] == pytest.approx(5.0)   # an observed sample
        assert summary["p99"] == pytest.approx(9.9)
        assert summary["max"] == pytest.approx(10.0)

    def test_small_and_empty_inputs(self):
        assert obs.summarize_latencies([]) == {
            "count": 0, "mean": 0.0, "max": 0.0, "p50": 0.0, "p99": 0.0}
        one = obs.summarize_latencies([0.3])
        assert one["p50"] == one["p99"] == one["max"] == pytest.approx(0.3)

    def test_custom_percentiles(self):
        summary = obs.summarize_latencies(range(1, 11),
                                          percentiles=(10, 90))
        assert summary["p10"] == 1.0 and summary["p90"] == 9.0


# ======================================================================
# span tracing
# ======================================================================

class TestTracing:

    def test_disabled_mode_is_shared_noop(self):
        assert not obs.is_enabled()
        s1, s2 = obs.span("pretrain.forward"), obs.span("serve.embed", k=3)
        assert s1 is s2 is _NOOP
        with s1:
            pass
        assert obs.trace_buffer() == []
        assert obs.current_context() is None

    def test_span_records_nest(self):
        obs.configure(enabled=True)
        with obs.span("outer", step=1):
            with obs.span("inner"):
                pass
        inner, outer = obs.trace_buffer()  # inner exits first
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert inner["trace"] == outer["trace"]
        assert inner["parent"] == outer["span"]
        assert outer["parent"] is None
        assert outer["attrs"] == {"step": 1}
        assert outer["wall_s"] >= 0.0 and "cpu_s" in outer

    def test_span_feeds_latency_histogram(self):
        obs.configure(enabled=True)
        with obs.span("test.stage"):
            pass
        hist = obs.histogram("repro_span_seconds",
                             labels={"span": "test.stage"})
        assert hist.count >= 1

    def test_error_annotation_and_last_span(self):
        obs.configure(enabled=True)
        with pytest.raises(RuntimeError):
            with obs.span("test.crashy"):
                raise RuntimeError("boom")
        assert obs.last_span() == "test.crashy"
        assert obs.trace_buffer()[-1]["error"] == "RuntimeError"

    def test_jsonl_sink_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        obs.configure(enabled=True, trace_path=path)
        with obs.span("pretrain.forward"):
            pass
        with obs.span("pretrain.backward"):
            pass
        obs.flush()
        records = obs.load_trace(path)
        assert [r["name"] for r in records] == ["pretrain.forward",
                                                "pretrain.backward"]

    def test_load_trace_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "ok", "wall_s": 0.1}\nnot json\n')
        with pytest.raises(ValueError, match="not valid JSON"):
            obs.load_trace(str(path))
        path.write_text('{"wall_s": 0.1}\n')
        with pytest.raises(ValueError, match="missing"):
            obs.load_trace(str(path))

    def test_remote_span_propagation(self):
        obs.configure(enabled=True)
        with obs.span("fabric.grant"):
            ctx = obs.current_context()
            assert ctx is not None and ctx["span"] is not None
        # Worker side: record built with tracing off locally.
        record = obs.remote_span_record(ctx, "fabric.produce", 0.02, 0.01,
                                        worker="w0", seq=4)
        assert record["trace"] == ctx["trace"]
        assert record["parent"] == ctx["span"]
        obs.record_remote(record)
        assert obs.trace_buffer()[-1]["name"] == "fabric.produce"

    def test_record_remote_noop_when_disabled(self):
        obs.record_remote({"name": "x", "wall_s": 0.1})
        obs.record_remote("garbage")
        assert obs.trace_buffer() == []

    def test_buffer_is_bounded(self):
        obs.configure(enabled=True, buffer_size=8)
        for i in range(20):
            with obs.span(f"s{i}"):
                pass
        buf = obs.trace_buffer()
        assert len(buf) == 8 and buf[-1]["name"] == "s19"


class TestReport:

    def _records(self):
        return ([{"name": "pretrain.forward", "trace": "t1",
                  "wall_s": 0.010, "cpu_s": 0.008}] * 4
                + [{"name": "pretrain.backward", "trace": "t1",
                    "wall_s": 0.030, "cpu_s": 0.028}] * 2)

    def test_aggregate_rows(self):
        rows = obs.aggregate_spans(self._records())
        assert [r["span"] for r in rows] == ["pretrain.backward",
                                             "pretrain.forward"]
        backward = rows[0]
        assert backward["count"] == 2
        assert backward["total_s"] == pytest.approx(0.060)
        assert backward["share"] == pytest.approx(0.6)
        assert sum(r["share"] for r in rows) == pytest.approx(1.0)

    def test_format_report_table(self):
        text = obs.format_report(self._records())
        assert "pretrain.backward" in text and "pretrain.forward" in text
        assert "6 spans across 1 trace(s)" in text
        assert obs.format_report([]) == "trace log contains no spans"


# ======================================================================
# serve GET /metrics round trip
# ======================================================================

NUM_NODES = 40
EVENTS = 160


def _tiny_service() -> EmbeddingService:
    rng = np.random.default_rng(11)
    stream = EventStream(
        src=rng.integers(0, NUM_NODES // 2, EVENTS),
        dst=rng.integers(NUM_NODES // 2, NUM_NODES, EVENTS),
        timestamps=np.sort(rng.uniform(0.0, 100.0, EVENTS)),
        num_nodes=NUM_NODES, name="obs-test")
    config = RunConfig(pretrain=CPDGConfig(
        epochs=1, batch_size=80, memory_dim=8, embed_dim=8, time_dim=4,
        n_neighbors=5, num_checkpoints=2, seed=0, memory_engine="sparse"))
    trainer = CPDGPreTrainer.from_backbone(
        config.backbone, stream.num_nodes, config.pretrain, delta_scale=1.0)
    artifact = PretrainArtifact(
        result=trainer.pretrain(stream), run_config=config,
        num_nodes=stream.num_nodes, delta_scale=1.0,
        dataset_fingerprint=stream_fingerprint(stream),
        dataset_name=stream.name)
    return EmbeddingService.from_artifact(artifact, history=stream)


def _count_of(text: str, metric: str, **labels) -> int:
    body = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    pattern = re.escape(f"{metric}{{{body}}}" if body else metric) + r" (\d+)"
    match = re.search(pattern, text)
    assert match, f"{metric} with {labels} missing from /metrics"
    return int(match.group(1))


class TestServeMetricsEndpoint:

    def test_get_metrics_reflects_requests(self):
        service = _tiny_service()
        server, _ = start_http_server(service)
        try:
            client = HttpClient(
                f"http://127.0.0.1:{server.server_address[1]}")
            before = _count_of(client.metrics(),
                               "repro_serve_request_seconds_count",
                               endpoint="embed")
            t = 150.0
            client.embed([1, 2, 3], t)
            client.topk(0, t, 4)
            client.ingest([1], [NUM_NODES - 1], [t + 1.0])
            text = client.metrics()
            assert text.rstrip().splitlines()[0].startswith("# ")
            after = _count_of(text, "repro_serve_request_seconds_count",
                              endpoint="embed")
            assert after == before + 1
            assert _count_of(text, "repro_serve_request_seconds_count",
                             endpoint="top_k") >= 1
            assert _count_of(text, "repro_serve_ingest_block_seconds_count",
                             ) >= 1
            assert _count_of(text, "repro_serve_planner_requests_total") >= 2
            assert _count_of(text, "repro_serve_ingest_events_total") >= 1
        finally:
            server.shutdown()

    def test_metrics_content_type(self):
        import urllib.request

        service = _tiny_service()
        server, _ = start_http_server(service)
        try:
            url = (f"http://127.0.0.1:{server.server_address[1]}/metrics")
            with urllib.request.urlopen(url, timeout=30.0) as response:
                assert response.status == 200
                ctype = response.headers.get("Content-Type", "")
                assert ctype.startswith("text/plain")
                assert "version=0.0.4" in ctype
                body = response.read().decode()
            assert "# TYPE repro_serve_request_seconds histogram" in body
        finally:
            server.shutdown()
