"""Compiled autograd (repro.nn.compile): trace/replay correctness.

The contract under test is *bit-identity*: a replayed step must produce
exactly the floats eager execution produces — same loss history, same
parameters, same memory — across backbones, memory engines and the
inference fast path, with transparent eager fallback when the op stream
diverges from the recorded program.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import CPDGConfig
from repro.core.pretrainer import CPDGPreTrainer
from repro.datasets import BipartiteInteractionGenerator, InteractionConfig
from repro.nn import MLP, Adam, CompiledStep, Tensor, functional as F
from repro.nn.autograd import graph_nodes_created, no_grad

from .conftest import numeric_gradient


def small_stream(num_events: int = 120):
    config = InteractionConfig(num_users=16, num_items=12,
                               num_events=num_events, time_span=40.0,
                               candidate_size=8)
    return BipartiteInteractionGenerator(config, seed=7).generate()


def pretrain_config(engine: str, compile_step: bool) -> CPDGConfig:
    return CPDGConfig(epochs=1, batch_size=40, num_checkpoints=2,
                      eta=3, epsilon=3, memory_dim=12, embed_dim=12,
                      time_dim=6, n_neighbors=6, memory_engine=engine,
                      seed=3, compile_step=compile_step)


def run_pretrain(stream, backbone: str, engine: str, compile_step: bool):
    config = pretrain_config(engine, compile_step)
    trainer = CPDGPreTrainer.from_backbone(backbone, stream.num_nodes, config)
    return trainer.pretrain(stream)


class TestPretrainBitIdentity:
    """Replayed pre-training is bit-identical to eager, per backbone."""

    @pytest.mark.parametrize("backbone", ["tgn", "jodie", "dyrep"])
    @pytest.mark.parametrize("engine", ["sparse", "dense"])
    def test_backbone_engine(self, backbone, engine):
        stream = small_stream()
        eager = run_pretrain(stream, backbone, engine, False)
        compiled = run_pretrain(stream, backbone, engine, True)
        assert eager.loss_history == compiled.loss_history
        for key, value in eager.encoder_state.items():
            assert np.array_equal(value, compiled.encoder_state[key]), key
        assert np.array_equal(eager.memory_state, compiled.memory_state)
        assert np.array_equal(eager.last_update, compiled.last_update)


class TestCompiledStepTraining:
    """Unit-level trace/replay semantics on a small supervised problem."""

    def _problem(self):
        rng = np.random.default_rng(0)
        net = MLP([4, 8, 1], rng)
        xs = rng.normal(size=(6, 5, 4))
        ys = rng.normal(size=(6, 5, 1))
        return net, xs, ys

    def _step_fn(self, net):
        def step(x, y):
            net.zero_grad()
            pred = net(Tensor(x))
            loss = ((pred - Tensor(y)) ** 2).mean()
            loss.backward()
            return loss.item()
        return step

    def test_replay_matches_eager_losses_and_grads(self):
        net, xs, ys = self._problem()
        step = self._step_fn(net)
        eager_losses = [step(x, y) for x, y in zip(xs, ys)]
        eager_grads = [p.grad.copy() for p in net.parameters()]

        net2, _, _ = self._problem()
        compiled = CompiledStep(self._step_fn(net2))
        compiled_losses = [compiled(x, y, key=x.shape)
                           for x, y in zip(xs, ys)]
        assert compiled_losses == eager_losses
        for p, g in zip(net2.parameters(), eager_grads):
            assert np.array_equal(p.grad, g)
        assert compiled.stats()["traces"] == 1
        assert compiled.stats()["replays"] == len(xs) - 1

    def test_replayed_gradients_pass_gradcheck(self):
        net, xs, ys = self._problem()
        compiled = CompiledStep(self._step_fn(net))
        compiled(xs[0], ys[0], key="k")
        compiled(xs[1], ys[1], key="k")       # replayed call
        assert compiled.stats()["replays"] == 1
        x, y = xs[1], ys[1]
        for param in net.parameters():
            def loss_value():
                with no_grad():
                    pred = net(Tensor(x))
                    return (((pred - Tensor(y)) ** 2).mean()).item()
            numeric = numeric_gradient(loss_value, param.data, eps=1e-6)
            assert np.allclose(param.grad, numeric, atol=1e-5)

    def test_batch_size_change_replays_bit_identically(self):
        # A pure shape change keeps the op stream identical, so replay
        # proceeds (buffers grow on demand) and must still match eager.
        net, xs, ys = self._problem()
        step = self._step_fn(net)
        rng = np.random.default_rng(5)
        x2, y2 = rng.normal(size=(9, 4)), rng.normal(size=(9, 1))
        eager_a = step(xs[0], ys[0])
        eager_b = step(x2, y2)
        eager_grads = [p.grad.copy() for p in net.parameters()]

        net2, _, _ = self._problem()
        compiled = CompiledStep(self._step_fn(net2))
        assert compiled(xs[0], ys[0], key="same") == eager_a
        assert compiled(x2, y2, key="same") == eager_b
        assert compiled.stats()["mismatches"] == 0
        assert compiled.stats()["replays"] == 1
        for p, g in zip(net2.parameters(), eager_grads):
            assert np.array_equal(p.grad, g)

    def test_op_stream_change_falls_back_and_stays_correct(self):
        # A data-dependent branch changes the op count: replay must
        # detect the divergence, re-run eagerly and produce eager bits.
        def build():
            rng = np.random.default_rng(1)
            net = MLP([4, 4, 1], rng)

            def step(x):
                net.zero_grad()
                loss = net(Tensor(x)).sum()
                if x.shape[0] > 5:
                    loss = loss * 2.0
                loss.backward()
                return loss.item()
            return net, step

        net_ref, ref_step = build()
        x_small = np.linspace(-1.0, 1.0, 16).reshape(4, 4)
        x_big = np.linspace(-1.0, 1.0, 32).reshape(8, 4)
        ref_a = ref_step(x_small)
        ref_b = ref_step(x_big)
        ref_grads = [p.grad.copy() for p in net_ref.parameters()]

        net2, step2 = build()
        compiled = CompiledStep(step2)
        assert compiled(x_small, key="k") == ref_a
        assert compiled(x_big, key="k") == ref_b          # diverges -> eager
        assert compiled.stats()["mismatches"] == 1
        for p, g in zip(net2.parameters(), ref_grads):
            assert np.array_equal(p.grad, g)

    def test_dead_key_after_retrace_budget(self):
        import itertools
        rng = np.random.default_rng(1)
        net = MLP([4, 4, 1], rng)
        calls = itertools.count()

        def unstable(_marker):
            net.zero_grad()
            loss = net(Tensor(np.ones((4, 4)))).sum()
            if next(calls) % 2:               # op count flips every run
                loss = loss * 2.0
            loss.backward()
            return loss.item()

        compiled = CompiledStep(unstable, max_retraces=2)
        for _ in range(8):
            compiled(None, key="k")
        assert "k" in compiled._dead
        assert compiled.stats()["eager"] >= 1

    def test_no_grad_inside_compiled_step(self):
        rng = np.random.default_rng(2)
        net = MLP([4, 6, 1], rng)
        xs = rng.normal(size=(4, 5, 4))

        def step(x):
            net.zero_grad()
            with no_grad():
                scale = float(np.abs(x).mean())
            loss = (net(Tensor(x / scale)) ** 2).mean()
            loss.backward()
            return loss.item()

        eager = [step(x) for x in xs]
        eager_grads = [p.grad.copy() for p in net.parameters()]
        compiled = CompiledStep(step)
        replayed = [compiled(x, key="k") for x in xs]
        assert replayed == eager
        for p, g in zip(net.parameters(), eager_grads):
            assert np.array_equal(p.grad, g)

    def test_disabled_passes_through(self):
        net, xs, ys = self._problem()
        compiled = CompiledStep(self._step_fn(net), enabled=False)
        for x, y in zip(xs, ys):
            compiled(x, y, key="k")
        assert compiled.counters == {"traces": 0, "replays": 0,
                                     "mismatches": 0, "eager": len(xs)}
        assert compiled.stats()["backend"] == {"requested": None,
                                               "active": "numpy"}
        assert compiled.stats()["kernels"] is None
        assert compiled.program_size("k") is None


class TestInferenceMode:
    """The no-graph inference fast path."""

    def _encoder_like(self):
        rng = np.random.default_rng(4)
        net = MLP([6, 12, 6], rng)
        return net

    def test_inference_replay_is_bit_identical_and_nodeless(self):
        net = self._encoder_like()
        rng = np.random.default_rng(9)
        xs = rng.normal(size=(5, 7, 6))

        def embed(x):
            return F.tanh(net(Tensor(x)))

        with no_grad():
            eager = [embed(x).data.copy() for x in xs]
        compiled = CompiledStep(embed, mode="inference")
        before = graph_nodes_created()
        with no_grad():
            replayed = [np.array(compiled(x, key="k").data, copy=True)
                        for x in xs]
        assert graph_nodes_created() == before
        for a, b in zip(eager, replayed):
            assert np.array_equal(a, b)
        assert compiled.stats()["replays"] == len(xs) - 1

    def test_backward_during_inference_trace_demotes(self):
        net = self._encoder_like()

        def bad(x):
            net.zero_grad()
            loss = net(Tensor(x)).sum()
            loss.backward()
            return loss.item()

        compiled = CompiledStep(bad, mode="inference")
        x = np.ones((3, 6))
        value = compiled(x, key="k")            # trace fails, result stays eager
        assert compiled.program_size("k") is None
        assert value == pytest.approx(bad(x))


class TestTensorItem:
    def test_scalar_ok(self):
        assert Tensor(2.0).item() == 2.0
        assert Tensor(np.float32(1.5)).item() == 1.5

    def test_non_scalar_raises_value_error(self):
        with pytest.raises(ValueError):
            Tensor(np.ones(3)).item()
        with pytest.raises(ValueError):
            Tensor(np.ones((2, 2))).item()
