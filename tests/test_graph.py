"""Unit tests for the temporal graph substrate."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.graph import (EventStream, NeighborFinder, RandomDestinationSampler,
                         chronological_batches, describe, density,
                         snapshot_at, snapshot_sequence)


def make_stream():
    #       events: (0,3,1.0) (1,3,2.0) (0,4,3.0) (2,3,4.0) (1,4,5.0)
    return EventStream(
        src=[0, 1, 0, 2, 1],
        dst=[3, 3, 4, 3, 4],
        timestamps=[1.0, 2.0, 3.0, 4.0, 5.0],
        num_nodes=5,
        name="handmade",
    )


class TestEventStream:
    def test_sorts_unsorted_input(self):
        stream = EventStream(src=[1, 0], dst=[2, 2], timestamps=[5.0, 1.0],
                             num_nodes=3)
        assert stream.timestamps.tolist() == [1.0, 5.0]
        assert stream.src.tolist() == [0, 1]

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            EventStream(src=[0], dst=[1, 2], timestamps=[0.0], num_nodes=3)

    def test_rejects_small_num_nodes(self):
        with pytest.raises(ValueError):
            EventStream(src=[0], dst=[5], timestamps=[0.0], num_nodes=3)

    def test_time_properties(self):
        stream = make_stream()
        assert stream.t_min == 1.0
        assert stream.t_max == 5.0
        assert stream.timespan == 4.0
        assert stream.num_events == 5

    def test_active_nodes(self):
        assert make_stream().active_nodes().tolist() == [0, 1, 2, 3, 4]

    def test_slice_time_half_open(self):
        stream = make_stream().slice_time(2.0, 4.0)
        assert stream.timestamps.tolist() == [2.0, 3.0]

    def test_slice_preserves_node_space(self):
        assert make_stream().slice_time(2.0, 4.0).num_nodes == 5

    def test_split_fraction_partitions(self):
        parts = make_stream().split_fraction([0.6, 0.2, 0.2])
        assert [p.num_events for p in parts] == [3, 1, 1]
        total = sum(p.num_events for p in parts)
        assert total == 5

    def test_split_fraction_validates(self):
        with pytest.raises(ValueError):
            make_stream().split_fraction([0.5, 0.4])

    def test_concatenate_resorts(self):
        a = make_stream().slice_time(3.0)
        b = make_stream().slice_time(t_end=3.0)
        merged = EventStream.concatenate([a, b])
        assert merged.num_events == 5
        assert (np.diff(merged.timestamps) >= 0).all()

    def test_remap_nodes_compacts(self):
        stream = EventStream(src=[10], dst=[99], timestamps=[0.0],
                             num_nodes=100)
        compact, old_ids = stream.remap_nodes()
        assert compact.num_nodes == 2
        assert old_ids.tolist() == [10, 99]
        assert compact.src[0] == 0 and compact.dst[0] == 1

    def test_events_iterator(self):
        events = list(make_stream().events())
        assert events[0] == (0, 3, 1.0)
        assert len(events) == 5


class TestNeighborFinder:
    def test_before_strictness(self):
        finder = NeighborFinder(make_stream())
        neighbors, times, _ = finder.before(3, 4.0)
        # Events (0,3,1.0), (1,3,2.0) only — (2,3,4.0) is not strictly before.
        assert neighbors.tolist() == [0, 1]
        assert times.tolist() == [1.0, 2.0]

    def test_undirected_indexing(self):
        finder = NeighborFinder(make_stream())
        neighbors, _, _ = finder.before(0, 10.0)
        assert neighbors.tolist() == [3, 4]

    def test_degree(self):
        finder = NeighborFinder(make_stream())
        assert finder.degree(3, 10.0) == 3
        assert finder.degree(3, 1.5) == 1
        assert finder.degree(2, 1.0) == 0

    def test_most_recent_truncates_chronologically(self):
        finder = NeighborFinder(make_stream())
        neighbors, times, _ = finder.most_recent(3, 10.0, 2)
        assert times.tolist() == [2.0, 4.0]
        assert neighbors.tolist() == [1, 2]

    def test_sample_uniform_empty_history(self, rng):
        finder = NeighborFinder(make_stream())
        neighbors, _, _ = finder.sample_uniform(2, 1.0, 5, rng)
        assert len(neighbors) == 0

    def test_batch_most_recent_padding(self):
        finder = NeighborFinder(make_stream())
        neighbors, times, events, mask = finder.batch_most_recent(
            np.array([3, 2]), np.array([10.0, 1.0]), 4)
        assert mask[0].tolist() == [True, False, False, False]
        assert mask[1].tolist() == [True, True, True, True]
        assert neighbors[0, 1:].tolist() == [0, 1, 2]

    def test_event_ids_resolve_to_stream_rows(self):
        stream = make_stream()
        finder = NeighborFinder(stream)
        _, _, event_ids = finder.before(4, 10.0)
        for idx in event_ids:
            assert 4 in (stream.src[idx], stream.dst[idx])


class TestBatching:
    def test_batches_cover_stream_in_order(self, rng):
        stream = make_stream()
        batches = list(chronological_batches(stream, 2, rng))
        assert [len(b) for b in batches] == [2, 2, 1]
        all_ts = np.concatenate([b.timestamps for b in batches])
        np.testing.assert_allclose(all_ts, stream.timestamps)

    def test_negative_destinations_are_observed_dsts(self, rng):
        stream = make_stream()
        for batch in chronological_batches(stream, 3, rng):
            assert set(batch.neg_dst.tolist()) <= {3, 4}

    def test_rejects_bad_batch_size(self, rng):
        with pytest.raises(ValueError):
            list(chronological_batches(make_stream(), 0, rng))

    def test_sampler_requires_destinations(self, rng):
        empty = EventStream(src=[], dst=[], timestamps=[], num_nodes=3)
        with pytest.raises(ValueError):
            RandomDestinationSampler(empty, rng)

    def test_labels_carried(self, rng):
        stream = make_stream()
        stream.labels = np.array([0, 1, 0, 1, 0])
        batches = list(chronological_batches(stream, 2, rng))
        assert batches[0].labels.tolist() == [0, 1]


class TestSnapshots:
    def test_snapshot_at_cut(self):
        graph = snapshot_at(make_stream(), 3.0)
        assert graph.number_of_edges() == 2
        assert graph.has_edge(0, 3)
        assert graph.has_edge(1, 3)
        assert not graph.has_edge(0, 4)

    def test_snapshot_weights_accumulate(self):
        stream = EventStream(src=[0, 0], dst=[1, 1], timestamps=[0.0, 1.0],
                             num_nodes=2)
        graph = snapshot_at(stream)
        assert graph[0][1]["weight"] == 2

    def test_multigraph_keeps_parallel_edges(self):
        stream = EventStream(src=[0, 0], dst=[1, 1], timestamps=[0.0, 1.0],
                             num_nodes=2)
        graph = snapshot_at(stream, multigraph=True)
        assert graph.number_of_edges() == 2
        assert isinstance(graph, nx.MultiGraph)

    def test_sequence_monotone_growth(self):
        snaps = snapshot_sequence(make_stream(), 3)
        sizes = [g.number_of_edges() for g in snaps]
        assert sizes == sorted(sizes)
        assert sizes[-1] == 5  # all five node pairs are distinct


class TestStats:
    def test_density_formula(self):
        assert density(4, 6) == pytest.approx(1.0)
        assert density(1, 0) == 0.0

    def test_describe_counts_active_nodes(self):
        stats = describe(make_stream())
        assert stats.num_nodes == 5
        assert stats.num_edges == 5
        assert stats.timespan == 4.0
        assert stats.num_sources == 3
        assert stats.num_destinations == 2

    def test_as_row_format(self):
        row = describe(make_stream()).as_row()
        assert set(row) == {"dataset", "# Nodes", "# Edges", "Timespan",
                            "Density"}
