"""Streaming batch pipeline: plans, seeding, shards, producers, consumers.

The contract under test is the one the trainer relies on: batch
production is a pure function of ``(graph, work item)``, so serial,
shuffled and multiprocess producers are bit-identical; memory-mapped CSR
shards answer every batch query exactly like the in-memory adjacency;
and producers tear down cleanly when the consumer dies.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import CPDGConfig, CPDGPreTrainer
from repro.experiments.common import PretrainCache
from repro.graph.events import EventStream
from repro.graph.neighbor_finder import NeighborFinder
from repro.stream import (BatchPlan, MultiprocessProducer, ProducerSpec,
                          SamplingContext, SerialProducer, StreamError,
                          batch_rngs, export_graph_shards, make_producer,
                          open_graph_shards, produce_batch)


def make_stream(num_events: int = 240, num_nodes: int = 40,
                seed: int = 3) -> EventStream:
    rng = np.random.default_rng(seed)
    half = num_nodes // 2
    return EventStream(
        src=rng.integers(0, half, num_events),
        dst=rng.integers(half, num_nodes, num_events),
        timestamps=np.sort(rng.uniform(0.0, 100.0, num_events)),
        num_nodes=num_nodes,
        name="stream-test",
    )


def small_config(**kwargs) -> CPDGConfig:
    defaults = dict(eta=3, epsilon=3, depth=2, epochs=2, batch_size=48,
                    memory_dim=8, embed_dim=8, time_dim=4, n_neighbors=3,
                    num_checkpoints=3, dtype="float64", seed=0)
    defaults.update(kwargs)
    return CPDGConfig(**defaults)


def spec_for(stream: EventStream, cfg: CPDGConfig) -> ProducerSpec:
    return ProducerSpec(
        batch_size=cfg.batch_size, seed=cfg.seed, epochs=cfg.epochs,
        sample_temporal=True, sample_structural=True,
        eta=cfg.eta, epsilon=cfg.epsilon, depth=cfg.depth, tau=cfg.tau,
        stream=stream)


def assert_prepared_equal(a, b) -> None:
    assert (a.seq, a.epoch, a.batch_idx) == (b.seq, b.epoch, b.batch_idx)
    for name in ("src", "dst", "timestamps", "neg_dst", "event_ids"):
        np.testing.assert_array_equal(getattr(a.batch, name),
                                      getattr(b.batch, name), err_msg=name)
    for name in ("temporal_pos", "temporal_neg",
                 "structural_pos", "structural_neg"):
        sa, sb = getattr(a, name), getattr(b, name)
        assert (sa is None) == (sb is None), name
        if sa is not None:
            np.testing.assert_array_equal(sa.nodes, sb.nodes, err_msg=name)
            np.testing.assert_array_equal(sa.indptr, sb.indptr, err_msg=name)
    assert (a.messages is None) == (b.messages is None)
    if a.messages is not None:
        for name in ("nodes", "times", "delta_t", "event_ids"):
            np.testing.assert_array_equal(getattr(a.messages, name),
                                          getattr(b.messages, name),
                                          err_msg=f"messages.{name}")


# ----------------------------------------------------------------------
# plan + seeding
# ----------------------------------------------------------------------

class TestBatchPlan:
    def test_enumerates_every_epoch_and_slice(self):
        plan = BatchPlan(num_events=103, batch_size=25, epochs=2, seed=0)
        items = list(plan)
        assert len(items) == len(plan) == 2 * 5
        assert [i.seq for i in items] == list(range(10))
        per_epoch = [i for i in items if i.epoch == 1]
        assert [(-(-103 // 25))] == [plan.batches_per_epoch]
        assert per_epoch[0].start == 0 and per_epoch[-1].stop == 103
        # Slices tile the stream exactly.
        covered = np.concatenate([np.arange(i.start, i.stop)
                                  for i in items if i.epoch == 0])
        np.testing.assert_array_equal(covered, np.arange(103))

    def test_invalid_plans_rejected(self):
        with pytest.raises(ValueError):
            BatchPlan(10, 0)
        with pytest.raises(ValueError):
            BatchPlan(10, 5, epochs=0)
        with pytest.raises(IndexError):
            BatchPlan(10, 5).item(2)


class TestBatchSeeding:
    def test_same_coordinates_same_draws(self):
        a = batch_rngs(7, 1, 3)
        b = batch_rngs(7, 1, 3)
        for name in ("neg_dst", "temporal_pos", "temporal_neg", "structural"):
            np.testing.assert_array_equal(
                getattr(a, name).integers(0, 1000, 8),
                getattr(b, name).integers(0, 1000, 8), err_msg=name)

    def test_distinct_coordinates_distinct_streams(self):
        draws = {tuple(batch_rngs(seed, epoch, idx).neg_dst.integers(0, 1 << 30, 4))
                 for seed in (0, 1) for epoch in (0, 1) for idx in (0, 1, 2)}
        assert len(draws) == 12

    def test_children_are_independent(self):
        rngs = batch_rngs(0, 0, 0)
        assert not np.array_equal(rngs.neg_dst.integers(0, 1 << 30, 8),
                                  rngs.structural.integers(0, 1 << 30, 8))


# ----------------------------------------------------------------------
# memory-mapped CSR shards
# ----------------------------------------------------------------------

class TestMmapShards:
    def test_batch_queries_match_in_memory(self, tmp_path):
        stream = make_stream()
        finder = NeighborFinder(stream)
        finder.export(str(tmp_path))
        mapped = NeighborFinder.open(str(tmp_path), mmap=True)
        assert isinstance(mapped.times, np.memmap)

        nodes = np.arange(stream.num_nodes, dtype=np.int64)
        ts = np.linspace(0.0, 110.0, stream.num_nodes)
        for name in ("indptr", "neighbors", "times", "event_ids"):
            np.testing.assert_array_equal(getattr(finder, name),
                                          getattr(mapped, name), err_msg=name)
        np.testing.assert_array_equal(finder.batch_degree(nodes, ts),
                                      mapped.batch_degree(nodes, ts))
        for a, b in zip(finder.batch_before(nodes, ts),
                        mapped.batch_before(nodes, ts)):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(finder.batch_most_recent(nodes, ts, 4),
                        mapped.batch_most_recent(nodes, ts, 4)):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(
                finder.batch_sample_uniform(nodes, ts, 3,
                                            np.random.default_rng(0)),
                mapped.batch_sample_uniform(nodes, ts, 3,
                                            np.random.default_rng(0))):
            np.testing.assert_array_equal(a, b)
        # Per-node queries agree too.
        for node in (0, 7, stream.num_nodes - 1):
            for a, b in zip(finder.before(node, 55.0),
                            mapped.before(node, 55.0)):
                np.testing.assert_array_equal(a, b)

    def test_graph_shards_round_trip_stream(self, tmp_path):
        stream = make_stream()
        finder = NeighborFinder(stream)
        export_graph_shards(stream, str(tmp_path), finder=finder)
        reopened, mapped = open_graph_shards(str(tmp_path), mmap=True)
        assert mapped is not None
        assert reopened.num_nodes == stream.num_nodes
        np.testing.assert_array_equal(reopened.src, stream.src)
        np.testing.assert_array_equal(reopened.dst, stream.dst)
        np.testing.assert_array_equal(reopened.timestamps, stream.timestamps)

    def test_open_without_shards_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            NeighborFinder.open(str(tmp_path / "nope"))


class TestBatchLastUpdate:
    def test_matches_live_touch_trace(self):
        """CSR-derived last-update equals the clock a chronological
        trainer's ``Memory.touch`` maintains, at every batch boundary."""
        stream = make_stream()
        finder = NeighborFinder(stream)
        batch_size = 32
        live = np.zeros(stream.num_nodes)
        probe = np.arange(stream.num_nodes, dtype=np.int64)
        for start in range(0, stream.num_events, batch_size):
            stop = min(start + batch_size, stream.num_events)
            derived = finder.batch_last_update(probe, start)
            np.testing.assert_array_equal(derived, live)
            touched = np.concatenate([stream.src[start:stop],
                                      stream.dst[start:stop]])
            np.maximum.at(live, touched,
                          np.tile(stream.timestamps[start:stop], 2))

    def test_base_clock_carries_over(self):
        stream = make_stream()
        finder = NeighborFinder(stream)
        base = np.full(stream.num_nodes, 1e6)
        probe = np.arange(stream.num_nodes, dtype=np.int64)
        out = finder.batch_last_update(probe, stream.num_events, base=base)
        np.testing.assert_array_equal(out, base)  # base dominates all times


# ----------------------------------------------------------------------
# producers
# ----------------------------------------------------------------------

class TestProduceBatch:
    def test_production_is_order_independent(self):
        stream = make_stream()
        cfg = small_config()
        spec = spec_for(stream, cfg)
        plan = spec.make_plan(stream.num_events)
        items = list(plan)

        ctx_a = SamplingContext(spec)
        in_order = {i.seq: produce_batch(ctx_a, i) for i in items}
        ctx_b = SamplingContext(spec)
        shuffled = {}
        for i in np.random.default_rng(0).permutation(len(items)):
            item = items[int(i)]
            shuffled[item.seq] = produce_batch(ctx_b, item)
        for seq in in_order:
            assert_prepared_equal(in_order[seq], shuffled[seq])

    def test_serial_and_multiprocess_produce_identically(self):
        stream = make_stream()
        cfg = small_config()
        spec = spec_for(stream, cfg)
        serial = list(SerialProducer(spec))
        with MultiprocessProducer(spec_for(stream, cfg),
                                  num_workers=2) as producer:
            parallel = list(producer)
        assert len(serial) == len(parallel) == len(spec.make_plan(
            stream.num_events))
        for a, b in zip(serial, parallel):
            assert_prepared_equal(a, b)


class TestMultiprocessLifecycle:
    def test_teardown_on_consumer_error_leaves_no_workers(self):
        stream = make_stream()
        producer = MultiprocessProducer(spec_for(stream, small_config()),
                                        num_workers=2)
        workers = list(producer._workers)
        shard_dir = producer.spec.shard_dir
        import os
        with pytest.raises(RuntimeError, match="consumer died"):
            with producer:
                for n, _ in enumerate(producer):
                    if n == 1:
                        raise RuntimeError("consumer died")
        assert all(not w.is_alive() for w in workers)
        assert not os.path.exists(shard_dir)  # temp shards cleaned up

    def test_close_is_idempotent(self):
        stream = make_stream()
        producer = MultiprocessProducer(spec_for(stream, small_config()),
                                        num_workers=2)
        producer.close()
        producer.close()
        with pytest.raises(StreamError):
            list(producer)

    def test_worker_error_propagates_as_stream_error(self):
        stream = make_stream()
        spec = spec_for(stream, small_config())
        # A plan pointing past the stream makes every worker fail fast.
        bad_plan = BatchPlan(stream.num_events * 10, 48, epochs=1, seed=0)
        producer = MultiprocessProducer(spec, plan=bad_plan, num_workers=2)
        workers = list(producer._workers)
        with pytest.raises(StreamError, match="worker failed"):
            with producer:
                list(producer)
        assert all(not w.is_alive() for w in workers)

    def test_stream_too_small_to_shard(self):
        stream = make_stream(num_events=30)
        spec = spec_for(stream, small_config(epochs=1, batch_size=30))
        with pytest.raises(StreamError, match="too small"):
            MultiprocessProducer(spec, num_workers=4)

    def test_make_producer_dispatch(self, monkeypatch):
        stream = make_stream()
        spec = spec_for(stream, small_config())
        assert isinstance(make_producer(spec, num_workers=0), SerialProducer)
        # Dispatch is decided by the requested worker count, not by this
        # machine's core count — pin it so the test is deterministic.
        monkeypatch.setattr("repro.stream.producer.os.cpu_count", lambda: 8)
        producer = make_producer(spec, num_workers=1)
        try:
            assert isinstance(producer, MultiprocessProducer)
        finally:
            producer.close()

    def test_make_producer_serial_fallback_without_spare_core(
            self, monkeypatch):
        """On a 1-core machine spawn workers only steal the trainer's
        time slice; make_producer must warn and go serial instead."""
        stream = make_stream()
        spec = spec_for(stream, small_config())
        monkeypatch.setattr("repro.stream.producer.os.cpu_count", lambda: 1)
        with pytest.warns(RuntimeWarning, match="no spare core"):
            producer = make_producer(spec, num_workers=2)
        assert isinstance(producer, SerialProducer)

    def test_hung_worker_raises_clear_error(self):
        """A frozen-but-alive worker (SIGSTOP) must surface as a named
        StreamError via missed heartbeats, not a 300 s generic stall."""
        import signal
        stream = make_stream()
        producer = MultiprocessProducer(
            spec_for(stream, small_config()), num_workers=2,
            heartbeat_interval=0.2, hang_timeout=2.0)
        workers = list(producer._workers)
        try:
            iterator = iter(producer)
            next(iterator)  # wait until both workers are up and producing
            for worker in workers:
                os.kill(worker.pid, signal.SIGSTOP)
            with pytest.raises(StreamError, match="hung"):
                for _ in iterator:
                    pass
        finally:
            for worker in workers:
                try:
                    os.kill(worker.pid, signal.SIGCONT)
                except (OSError, ProcessLookupError):
                    pass
            producer.close(force=True)
        assert all(not w.is_alive() for w in workers)


# ----------------------------------------------------------------------
# trainer equivalence (the acceptance bar)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("backbone", ["tgn", "jodie", "dyrep"])
class TestPretrainEquivalence:
    def pretrain(self, backbone: str, stream: EventStream, **overrides):
        cfg = small_config(**overrides)
        trainer = CPDGPreTrainer.from_backbone(backbone, stream.num_nodes, cfg)
        return trainer.pretrain(stream)

    def test_workers_bit_identical(self, backbone):
        stream = make_stream()
        serial = self.pretrain(backbone, stream, num_workers=0)
        parallel = self.pretrain(backbone, stream, num_workers=2)
        np.testing.assert_array_equal(np.asarray(serial.loss_history),
                                      np.asarray(parallel.loss_history))
        np.testing.assert_array_equal(serial.memory_state,
                                      parallel.memory_state)
        np.testing.assert_array_equal(serial.last_update,
                                      parallel.last_update)
        for key in serial.encoder_state:
            np.testing.assert_array_equal(serial.encoder_state[key],
                                          parallel.encoder_state[key],
                                          err_msg=key)

    def test_mmap_graph_bit_identical(self, backbone):
        stream = make_stream()
        in_memory = self.pretrain(backbone, stream, mmap_graph=False)
        mapped = self.pretrain(backbone, stream, mmap_graph=True)
        np.testing.assert_array_equal(np.asarray(in_memory.loss_history),
                                      np.asarray(mapped.loss_history))
        np.testing.assert_array_equal(in_memory.memory_state,
                                      mapped.memory_state)


class TestPretrainSeedingProperties:
    def test_resume_style_order_independence(self):
        """Epoch-2 draws do not depend on epoch-1 having been sampled —
        the resume-from-checkpoint divergence fix."""
        stream = make_stream()
        cfg = small_config()
        spec = spec_for(stream, cfg)
        ctx = SamplingContext(spec)
        plan = spec.make_plan(stream.num_events)
        later = [i for i in plan if i.epoch == 1]
        fresh = {i.seq: produce_batch(SamplingContext(spec), i) for i in later}
        full = {i.seq: produce_batch(ctx, i) for i in plan}
        for seq, prepared in fresh.items():
            assert_prepared_equal(prepared, full[seq])

    def test_config_validates_stream_knobs(self):
        with pytest.raises(ValueError):
            small_config(num_workers=-1).validate()
        with pytest.raises(ValueError):
            small_config(prefetch_batches=0).validate()


# ----------------------------------------------------------------------
# downstream consumers
# ----------------------------------------------------------------------

class TestFinetuneConsumers:
    def test_link_prediction_workers_match_serial(self, tiny_stream):
        from repro.datasets.splits import split_downstream
        from repro.tasks.finetune import (FineTuneConfig,
                                          build_finetuned_encoder)
        from repro.tasks.link_prediction import LinkPredictionTask

        split = split_downstream(tiny_stream, fractions=(0.6, 0.2, 0.2))
        histories = {}
        for workers in (0, 2):
            cfg = FineTuneConfig(epochs=2, batch_size=40, seed=0,
                                 num_workers=workers)
            strategy = build_finetuned_encoder(
                "tgn", tiny_stream.num_nodes,
                small_config(), None, "none", cfg)
            task = LinkPredictionTask(strategy, split, cfg)
            histories[workers] = task.train()
        assert histories[0] == histories[2]


# ----------------------------------------------------------------------
# on-disk artifact cache
# ----------------------------------------------------------------------

class TestArtifactCache:
    def _artifact(self, stream):
        from repro.api import Pipeline, RunConfig
        config = RunConfig(backbone="tgn", strategy="full",
                           pretrain=small_config(epochs=1))
        return Pipeline(config).pretrain(stream).artifact

    def test_artifacts_survive_process_restart(self, tmp_path):
        stream = make_stream(num_events=120)
        calls = {"n": 0}

        def compute():
            calls["n"] += 1
            return self._artifact(stream)

        key = ("cpdg", "tgn", "fingerprint", 0)
        first = PretrainCache(cache_dir=str(tmp_path))
        a1 = first.get_artifact(key, compute)
        a2 = first.get_artifact(key, compute)
        assert calls["n"] == 1 and a1 is a2

        # A fresh cache (≈ a new process) hits the file, not compute().
        second = PretrainCache(cache_dir=str(tmp_path))
        a3 = second.get_artifact(key, compute)
        assert calls["n"] == 1
        np.testing.assert_array_equal(a1.result.memory_state,
                                      a3.result.memory_state)

    def test_memory_only_without_cache_dir(self, monkeypatch):
        monkeypatch.delenv("REPRO_PRETRAIN_CACHE", raising=False)
        cache = PretrainCache()
        assert cache.cache_dir is None
        calls = {"n": 0}

        def compute():
            calls["n"] += 1
            return object()

        cache.get_artifact(("k",), compute)
        cache.get_artifact(("k",), compute)
        assert calls["n"] == 1
