"""Tests for schedulers, extra optimizers, serialization and gradcheck."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (MLP, AdaGrad, Adam, CosineAnnealingLR, GradCheckError,
                      LinearWarmupLR, Linear, Parameter, RMSprop, SGD, StepLR,
                      Tensor, check_gradients, load_arrays, load_module,
                      numeric_gradient, save_arrays, save_module)
from repro.nn import functional as F


class TestSchedulers:
    def make_opt(self, lr=1.0):
        return SGD([Parameter(np.zeros(1))], lr=lr)

    def test_step_lr_decays_at_boundaries(self):
        opt = self.make_opt()
        sched = StepLR(opt, step_size=2, gamma=0.1)
        rates = [sched.step() for _ in range(4)]
        assert rates == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_step_lr_validates(self):
        with pytest.raises(ValueError):
            StepLR(self.make_opt(), step_size=0)

    def test_cosine_reaches_min(self):
        opt = self.make_opt()
        sched = CosineAnnealingLR(opt, t_max=10, min_lr=0.1)
        for _ in range(10):
            last = sched.step()
        assert last == pytest.approx(0.1)

    def test_cosine_is_monotone_decreasing(self):
        opt = self.make_opt()
        sched = CosineAnnealingLR(opt, t_max=8)
        rates = [sched.step() for _ in range(8)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_cosine_clamps_past_t_max(self):
        opt = self.make_opt()
        sched = CosineAnnealingLR(opt, t_max=3, min_lr=0.2)
        for _ in range(10):
            last = sched.step()
        assert last == pytest.approx(0.2)

    def test_warmup_ramps_then_flat(self):
        opt = self.make_opt()
        sched = LinearWarmupLR(opt, warmup_epochs=4)
        assert opt.lr == pytest.approx(0.25)
        rates = [sched.step() for _ in range(6)]
        assert rates[:3] == pytest.approx([0.5, 0.75, 1.0])
        assert rates[-1] == pytest.approx(1.0)

    def test_scheduler_updates_optimizer_in_place(self):
        opt = self.make_opt()
        sched = StepLR(opt, step_size=1, gamma=0.5)
        sched.step()
        assert opt.lr == pytest.approx(0.5)


class TestExtraOptimizers:
    @pytest.mark.parametrize("opt_cls,kwargs", [
        (RMSprop, dict(lr=0.05)),
        (AdaGrad, dict(lr=0.5)),
    ])
    def test_converges_on_quadratic(self, opt_cls, kwargs):
        p = Parameter(np.array([4.0, -2.0]))
        opt = opt_cls([p], **kwargs)
        for _ in range(500):
            opt.zero_grad()
            (p ** 2.0).sum().backward()
            opt.step()
        np.testing.assert_allclose(p.data, np.zeros(2), atol=1e-2)

    def test_rmsprop_weight_decay(self):
        p = Parameter(np.array([1.0]))
        opt = RMSprop([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (p * 0.0).sum().backward()
        opt.step()
        assert p.data[0] < 1.0

    def test_adagrad_rate_decays_over_steps(self):
        p = Parameter(np.array([10.0]))
        opt = AdaGrad([p], lr=1.0)
        deltas = []
        for _ in range(3):
            before = p.data.copy()
            opt.zero_grad()
            (p * 2.0).sum().backward()   # constant gradient
            opt.step()
            deltas.append(abs(float((p.data - before)[0])))
        assert deltas[0] > deltas[1] > deltas[2]


class TestSerialization:
    def test_module_roundtrip(self, rng, tmp_path):
        a = MLP([4, 8, 2], rng)
        b = MLP([4, 8, 2], np.random.default_rng(777))
        path = str(tmp_path / "model.npz")
        save_module(a, path)
        load_module(b, path)
        x = Tensor(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_load_rejects_wrong_architecture(self, rng, tmp_path):
        a = MLP([4, 8, 2], rng)
        wrong = MLP([4, 6, 2], rng)
        path = str(tmp_path / "model.npz")
        save_module(a, path)
        with pytest.raises((KeyError, ValueError)):
            load_module(wrong, path)

    def test_array_dict_roundtrip(self, rng, tmp_path):
        arrays = {"memory": rng.normal(size=(5, 3)),
                  "last_update": rng.random(5)}
        path = str(tmp_path / "state.npz")
        save_arrays(path, arrays)
        loaded = load_arrays(path)
        assert set(loaded) == set(arrays)
        np.testing.assert_allclose(loaded["memory"], arrays["memory"])

    def test_save_creates_parent_dirs(self, rng, tmp_path):
        path = str(tmp_path / "nested" / "deep" / "model.npz")
        save_module(Linear(2, 2, rng), path)
        import os
        assert os.path.exists(path)


class TestGradcheck:
    def test_passes_on_correct_gradients(self, rng):
        w = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        x = rng.normal(size=(4, 3))
        check_gradients(lambda: (F.tanh(Tensor(x) @ w) ** 2.0).sum(), [w])

    def test_accepts_module(self, rng):
        mlp = MLP([3, 4, 1], rng)
        x = Tensor(rng.normal(size=(5, 3)))
        check_gradients(lambda: (mlp(x) ** 2.0).sum(), mlp)

    def test_detects_wrong_gradient(self, rng):
        """A backward that lies about its gradient must be caught."""
        w = Tensor(rng.normal(size=4), requires_grad=True)

        def buggy_loss():
            out = w._make_child(w.data * 3.0, (w,))

            def _backward(grad):
                w._accumulate(grad * 2.0)   # should be * 3.0
            out._backward = _backward
            return out.sum()

        with pytest.raises(GradCheckError):
            check_gradients(buggy_loss, [w])

    def test_numeric_gradient_linear_function(self):
        x = np.array([1.0, 2.0])
        grad = numeric_gradient(lambda: float(3.0 * x[0] - 2.0 * x[1]), x)
        np.testing.assert_allclose(grad, [3.0, -2.0], atol=1e-6)
