"""Sparse-delta memory engine: equivalence, dtype and gradient tests.

The sparse engine (``memory_engine="sparse"``) must be *bit-identical* to
the retained dense reference engine across all three backbones: memory
state, embeddings and parameter gradients, including the empty-pending
first batch and batches with repeated nodes.  Plus unit coverage for
:class:`SparseRowGrad` accumulation, :class:`ZeroEdgeFeatures`,
vectorized ``clip_grad_norm`` and the configurable dtype path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CPDGConfig, CPDGPreTrainer
from repro.dgnn import (BACKBONES, DenseMemoryView, Memory, RawMessageStore,
                        SparseMemoryView, ZeroEdgeFeatures, make_encoder)
from repro.graph import chronological_batches
from repro.graph.events import EventStream
from repro.nn import (Adam, Parameter, SparseRowGrad, Tensor, clip_grad_norm,
                      default_dtype, get_default_dtype)
from repro.nn import functional as F


def synthetic_stream(num_nodes=40, events=240, seed=0, edge_feats=True,
                     repeated_nodes=False):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_nodes // 2, events)
    dst = rng.integers(num_nodes // 2, num_nodes, events)
    if repeated_nodes:
        # Force many duplicate endpoints inside every batch.
        src[::3] = src[0]
        dst[::5] = dst[0]
    return EventStream(
        src=src, dst=dst,
        timestamps=np.sort(rng.uniform(0.0, 100.0, events)),
        num_nodes=num_nodes,
        edge_feats=(rng.normal(size=(events, 4)) if edge_feats else None),
    )


def build_pair(backbone, stream, **kwargs):
    """Identically initialised dense/sparse encoders."""
    encoders = {}
    for engine in ("dense", "sparse"):
        rng = np.random.default_rng(7)
        enc = make_encoder(backbone, stream.num_nodes, rng, memory_dim=8,
                           embed_dim=8, time_dim=4, edge_dim=4, n_neighbors=3,
                           memory_engine=engine, **kwargs)
        enc.attach(stream)
        enc.reset_memory()
        encoders[engine] = enc
    return encoders


class TestEngineEquivalence:
    """Sparse flush == dense flush, bitwise."""

    @pytest.mark.parametrize("backbone", BACKBONES)
    @pytest.mark.parametrize("repeated_nodes", [False, True])
    def test_bit_identical_over_batches(self, backbone, repeated_nodes):
        stream = synthetic_stream(repeated_nodes=repeated_nodes)
        encoders = build_pair(backbone, stream)
        batches = list(chronological_batches(stream, 60,
                                             np.random.default_rng(1)))
        # Batch 0 exercises the empty-pending-messages path.
        for i, batch in enumerate(batches):
            outputs = {}
            for engine, enc in encoders.items():
                z = enc.compute_embedding(batch.src, batch.timestamps)
                enc.zero_grad()
                (z ** 2.0).sum().backward()
                outputs[engine] = (
                    z.data.copy(),
                    {name: (None if p.grad is None else p.grad.copy())
                     for name, p in enc.named_parameters()},
                )
                enc.register_batch(batch)
                enc.end_batch()
            z_dense, grads_dense = outputs["dense"]
            z_sparse, grads_sparse = outputs["sparse"]
            np.testing.assert_array_equal(z_dense, z_sparse,
                                          err_msg=f"embeddings, batch {i}")
            for name, grad in grads_dense.items():
                if grad is None:
                    assert grads_sparse[name] is None
                else:
                    np.testing.assert_array_equal(
                        grad, grads_sparse[name],
                        err_msg=f"grad {name}, batch {i}")
            np.testing.assert_array_equal(
                encoders["dense"].memory.state,
                encoders["sparse"].memory.state,
                err_msg=f"memory state, batch {i}")
            np.testing.assert_array_equal(
                encoders["dense"].memory.last_update,
                encoders["sparse"].memory.last_update)

    def test_flush_with_no_pending_messages_matches(self):
        stream = synthetic_stream()
        encoders = build_pair("tgn", stream)
        nodes = np.array([0, 3, 3, 21])
        for enc in encoders.values():
            assert len(enc._messages) == 0
        rows = {engine: enc.flush_messages().gather(nodes).data
                for engine, enc in encoders.items()}
        np.testing.assert_array_equal(rows["dense"], rows["sparse"])

    def test_seeded_pretrain_loss_history_regression(self):
        """End-to-end Algorithm 1: dense and sparse engines must produce
        the same per-batch loss history and final memory."""
        stream = synthetic_stream(num_nodes=30, events=180)
        results = {}
        for engine in ("dense", "sparse"):
            cfg = CPDGConfig(epochs=2, batch_size=60, memory_dim=8,
                             embed_dim=8, time_dim=4, edge_dim=4,
                             n_neighbors=3, eta=3, epsilon=3,
                             num_checkpoints=2, memory_engine=engine,
                             dtype="float64", seed=3)
            trainer = CPDGPreTrainer.from_backbone("tgn", stream.num_nodes, cfg)
            results[engine] = trainer.pretrain(stream)
        hist_dense = np.asarray(results["dense"].loss_history)
        hist_sparse = np.asarray(results["sparse"].loss_history)
        np.testing.assert_allclose(hist_dense, hist_sparse, rtol=0, atol=0)
        np.testing.assert_array_equal(results["dense"].memory_state,
                                      results["sparse"].memory_state)
        for key in results["dense"].encoder_state:
            np.testing.assert_array_equal(results["dense"].encoder_state[key],
                                          results["sparse"].encoder_state[key])


class TestMessageStagingOrder:
    def test_last_message_follows_event_order_across_roles(self):
        """A node that is dst of an early event and src of a later event
        must keep the *later* event's message under the "last" aggregator
        (regression: [all src | all dst] staging picked the dst role)."""
        stream = EventStream(
            src=np.array([1, 2, 3, 7]),
            dst=np.array([7, 4, 5, 6]),
            timestamps=np.array([10.0, 20.0, 30.0, 40.0]),
            num_nodes=8,
        )
        rng = np.random.default_rng(0)
        enc = make_encoder("tgn", stream.num_nodes, rng, memory_dim=4,
                           embed_dim=4, time_dim=2, edge_dim=0, n_neighbors=2)
        enc.attach(stream)
        batch = next(iter(chronological_batches(stream, 4,
                                                np.random.default_rng(0))))
        enc.register_batch(batch)
        staged = enc._messages.pop_all()
        nodes, rows = staged.last_per_node()
        last_time = dict(zip(nodes.tolist(), staged.time[rows].tolist()))
        assert last_time[7] == 40.0  # src role of the later event wins
        assert last_time[1] == 10.0
        assert last_time[6] == 40.0
        # And every node's selected message is its chronologically last.
        for node, t in last_time.items():
            assert t == staged.time[staged.nodes == node].max()

    def test_reattach_keeps_staged_feature_rows(self):
        """Edge-feature rows are captured at register time, so attaching
        a different (shorter) stream with messages still pending must not
        read out-of-range event ids from the new feature table."""
        long_stream = synthetic_stream(num_nodes=20, events=60)
        short_stream = synthetic_stream(num_nodes=20, events=5, seed=1)
        rng = np.random.default_rng(0)
        enc = make_encoder("tgn", 20, rng, memory_dim=4, embed_dim=4,
                           time_dim=2, edge_dim=4, n_neighbors=2)
        enc.attach(long_stream)
        for batch in chronological_batches(long_stream, 30,
                                           np.random.default_rng(0)):
            enc.compute_embedding(batch.src, batch.timestamps)
            enc.register_batch(batch)
            enc.end_batch()
        # Messages from the last batch (event ids up to 59) still pending.
        staged_feat = enc._messages._blocks[-1].edge_feat
        np.testing.assert_array_equal(
            staged_feat[-1], long_stream.edge_feats[-1])
        enc.attach(short_stream)
        z = enc.compute_embedding(np.array([0, 1]), np.array([200.0, 200.0]))
        assert np.isfinite(z.data).all()

    def test_self_loop_keeps_dst_role_message(self):
        """src == dst in one event: the dst-role row is staged second,
        matching the legacy per-event push order."""
        stream = EventStream(src=np.array([3]), dst=np.array([3]),
                             timestamps=np.array([5.0]), num_nodes=4)
        rng = np.random.default_rng(0)
        enc = make_encoder("jodie", stream.num_nodes, rng, memory_dim=4,
                           embed_dim=4, time_dim=2, edge_dim=0, n_neighbors=2)
        enc.attach(stream)
        batch = next(iter(chronological_batches(stream, 1,
                                                np.random.default_rng(0))))
        enc.register_batch(batch)
        staged = enc._messages.pop_all()
        _, rows = staged.last_per_node()
        assert rows[0] == 1  # second (dst) row of the interleaved pair


class TestFinetuneDtype:
    def test_downstream_stage_runs_at_config_dtype(self):
        from repro.core.pretrainer import CPDGPreTrainer
        from repro.tasks.finetune import FineTuneConfig, build_finetuned_encoder
        stream = synthetic_stream(num_nodes=20, events=120)
        cfg = CPDGConfig(epochs=1, batch_size=60, memory_dim=8, embed_dim=8,
                         time_dim=4, edge_dim=4, n_neighbors=3, eta=3,
                         epsilon=3, num_checkpoints=2, dtype="float32")
        result = CPDGPreTrainer.from_backbone(
            "tgn", stream.num_nodes, cfg).pretrain(stream)
        strategy = build_finetuned_encoder(
            "tgn", stream.num_nodes, cfg, result, "eie-gru", FineTuneConfig())
        assert strategy.dtype == np.float32
        for param in strategy.encoder.parameters():
            assert param.data.dtype == np.float32
        for param in strategy.eie.parameters():
            assert param.data.dtype == np.float32
        assert strategy.encoder.memory.state.dtype == np.float32


class TestSparseMemoryView:
    def test_gather_overlays_delta_rows(self):
        mem = Memory(6, 3)
        mem.state[:] = np.arange(18, dtype=float).reshape(6, 3)
        view = SparseMemoryView(mem)
        view.write(np.array([4, 1]), Tensor(np.full((2, 3), -1.0)))
        out = view.gather(np.array([0, 1, 4, 5, 1])).data
        np.testing.assert_array_equal(out[0], mem.state[0])
        np.testing.assert_array_equal(out[1], np.full(3, -1.0))
        np.testing.assert_array_equal(out[2], np.full(3, -1.0))
        np.testing.assert_array_equal(out[3], mem.state[5])
        np.testing.assert_array_equal(out[4], np.full(3, -1.0))

    def test_persist_writes_only_touched_rows(self):
        mem = Memory(5, 2)
        view = SparseMemoryView(mem)
        view.write(np.array([2]), Tensor(np.ones((1, 2))))
        view.persist()
        assert mem.state[2].sum() == 2.0
        assert mem.state.sum() == 2.0
        np.testing.assert_array_equal(view.touched, [2])

    def test_second_write_merges_delta(self):
        mem = Memory(6, 2)
        view = SparseMemoryView(mem)
        view.write(np.array([1, 3]), Tensor(np.ones((2, 2))))
        view.write(np.array([3, 5]), Tensor(np.full((2, 2), 2.0)))
        np.testing.assert_array_equal(view.touched, [1, 3, 5])
        out = view.gather(np.array([1, 3, 5])).data
        np.testing.assert_array_equal(out, [[1, 1], [2, 2], [2, 2]])

    def test_write_rejects_duplicate_nodes(self):
        view = SparseMemoryView(Memory(4, 2))
        with pytest.raises(ValueError):
            view.write(np.array([1, 1]), Tensor(np.ones((2, 2))))

    def test_empty_write_is_a_noop(self):
        mem = Memory(4, 2)
        view = SparseMemoryView(mem)
        view.write(np.empty(0, dtype=np.int64), Tensor(np.empty((0, 2))))
        out = view.gather(np.array([3])).data  # must not raise
        np.testing.assert_array_equal(out, [[0.0, 0.0]])
        view.persist()
        assert mem.state.sum() == 0.0

    def test_gradients_flow_through_written_rows_only(self):
        mem = Memory(5, 2)
        view = SparseMemoryView(mem)
        rows = Tensor(np.ones((2, 2)), requires_grad=True)
        view.write(np.array([0, 3]), rows)
        out = view.gather(np.array([0, 1, 3, 3]))
        out.sum().backward()
        np.testing.assert_array_equal(rows.grad, [[1.0, 1.0], [2.0, 2.0]])

    def test_dense_view_matches_legacy_full_matrix_semantics(self):
        mem = Memory(4, 2)
        mem.state[:] = 1.0
        view = DenseMemoryView(mem)
        view.write(np.array([2]), Tensor(np.zeros((1, 2))))
        full = view.dense().data
        assert full.shape == (4, 2)
        assert full[2].sum() == 0.0
        view.persist()
        assert mem.state[2].sum() == 0.0
        assert mem.state[0].sum() == 2.0

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            Memory(4, 2).view("hologram")


class TestSparseRowGrad:
    def test_lookup_backward_stays_sparse_until_read(self):
        table = Tensor(np.arange(12, dtype=float).reshape(4, 3),
                       requires_grad=True)
        F.embedding_lookup(table, np.array([1, 1, 3])).sum().backward()
        assert isinstance(table.raw_grad, SparseRowGrad)
        expected = np.zeros((4, 3))
        expected[1] = 2.0
        expected[3] = 1.0
        np.testing.assert_array_equal(table.grad, expected)  # densifies
        assert isinstance(table.raw_grad, np.ndarray)

    def test_sparse_plus_sparse_then_dense(self):
        table = Tensor(np.zeros((4, 2)), requires_grad=True)
        a = F.embedding_lookup(table, np.array([0, 2]))
        b = F.embedding_lookup(table, np.array([2, 3]))
        (a.sum() + b.sum() + (table * 2.0).sum()).backward()
        expected = np.full((4, 2), 2.0)
        expected[0] += 1.0
        expected[2] += 2.0
        expected[3] += 1.0
        np.testing.assert_array_equal(table.grad, expected)

    def test_coalesce_merges_duplicates(self):
        grad = SparseRowGrad((4, 2), np.array([2, 0, 2]),
                             np.ones((3, 2)))
        coalesced = grad.coalesce()
        assert coalesced.nnz == 2
        np.testing.assert_array_equal(coalesced.to_dense(), grad.to_dense())

    def test_multidim_indices(self):
        table = Tensor(np.zeros((5, 2)), requires_grad=True)
        idx = np.array([[0, 1], [1, 4]])
        F.embedding_lookup(table, idx).sum().backward()
        expected = np.zeros((5, 2))
        np.add.at(expected, idx.reshape(-1), np.ones((4, 2)))
        np.testing.assert_array_equal(table.grad, expected)


class TestZeroEdgeFeatures:
    def test_attach_without_edge_feats_is_lazy(self):
        stream = synthetic_stream(edge_feats=False)
        rng = np.random.default_rng(0)
        enc = make_encoder("tgn", stream.num_nodes, rng, memory_dim=8,
                           embed_dim=8, time_dim=4, edge_dim=4, n_neighbors=3)
        enc.attach(stream)
        assert isinstance(enc._edge_feats, ZeroEdgeFeatures)
        z = enc.compute_embedding(np.array([0, 1]), np.array([50.0, 50.0]))
        assert z.shape == (2, 8)

    def test_rows_are_zero_and_writable(self):
        feats = ZeroEdgeFeatures(3)
        rows = feats[np.array([5, 9])]
        assert rows.shape == (2, 3)
        rows[0] = 1.0  # embedding path masks rows in place
        assert feats[np.array([5])].sum() == 0.0
        assert feats[7].shape == (3,)

    def test_engines_agree_without_edge_feats(self):
        stream = synthetic_stream(edge_feats=False)
        encoders = build_pair("tgn", stream)
        for batch in list(chronological_batches(
                stream, 60, np.random.default_rng(1)))[:3]:
            zs = {}
            for engine, enc in encoders.items():
                zs[engine] = enc.compute_embedding(batch.src,
                                                   batch.timestamps).data
                enc.register_batch(batch)
                enc.end_batch()
            np.testing.assert_array_equal(zs["dense"], zs["sparse"])


class TestClipGradNorm:
    def test_matches_per_parameter_reference(self):
        rng = np.random.default_rng(0)
        params = [Parameter(rng.normal(size=s)) for s in ((3, 4), (5,), (2, 2))]
        grads = [rng.normal(size=p.shape) for p in params]
        expected_norm = float(np.sqrt(sum((g ** 2).sum() for g in grads)))
        for p, g in zip(params, grads):
            p.grad = g.copy()
        norm = clip_grad_norm(params, 1.0)
        assert norm == pytest.approx(expected_norm)
        clipped = np.sqrt(sum((p.grad ** 2).sum() for p in params))
        assert clipped == pytest.approx(1.0)

    def test_no_grads_returns_zero(self):
        assert clip_grad_norm([Parameter(np.ones(3))], 1.0) == 0.0

    def test_below_threshold_untouched(self):
        p = Parameter(np.ones(2))
        p.grad = np.array([0.3, 0.4])
        norm = clip_grad_norm([p], 1.0)
        assert norm == pytest.approx(0.5)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])

    def test_handles_sparse_grads(self):
        p = Parameter(np.zeros((4, 2)))
        F.embedding_lookup(p, np.array([1, 1])).sum().backward()
        norm = clip_grad_norm([p], 1.0)
        assert norm == pytest.approx(np.sqrt(8.0))  # row 1 accumulates [2, 2]


class TestDtype:
    def test_default_dtype_context(self):
        assert get_default_dtype() == np.float64
        with default_dtype(np.float32):
            assert Tensor(np.zeros(2)).data.dtype == np.float32
            with default_dtype(np.float64):
                assert Tensor(np.zeros(2)).data.dtype == np.float64
            assert get_default_dtype() == np.float32
        assert get_default_dtype() == np.float64

    def test_non_float_default_rejected(self):
        with pytest.raises(ValueError):
            with default_dtype(np.int64):
                pass

    def test_float32_pretrain_end_to_end(self):
        stream = synthetic_stream(num_nodes=20, events=120)
        cfg = CPDGConfig(epochs=1, batch_size=60, memory_dim=8, embed_dim=8,
                         time_dim=4, edge_dim=4, n_neighbors=3, eta=3,
                         epsilon=3, num_checkpoints=2, dtype="float32")
        trainer = CPDGPreTrainer.from_backbone("tgn", stream.num_nodes, cfg)
        assert trainer.encoder.memory.state.dtype == np.float32
        for param in trainer.encoder.parameters():
            assert param.data.dtype == np.float32
        result = trainer.pretrain(stream)
        assert result.memory_state.dtype == np.float32
        assert result.checkpoints[0].dtype == np.float32
        assert np.isfinite(np.asarray(result.loss_history)).all()

    def test_float32_artifact_roundtrip(self, tmp_path):
        from repro.api import Pipeline, RunConfig
        config = RunConfig.from_dict({
            "backbone": "tgn",
            "pretrain": {"epochs": 1, "batch_size": 80, "memory_dim": 8,
                         "embed_dim": 8, "time_dim": 4, "edge_dim": 4,
                         "n_neighbors": 3, "eta": 3, "epsilon": 3,
                         "num_checkpoints": 2, "dtype": "float32"},
            "data": {"dataset": "meituan", "num_users": 12, "num_items": 8,
                     "events_main": 200},
        })
        path = tmp_path / "artifact.npz"
        Pipeline(config).pretrain().save(str(path))
        from repro.api.artifact import PretrainArtifact
        loaded = PretrainArtifact.load(str(path))
        assert loaded.result.memory_state.dtype == np.float32
        assert loaded.describe()["memory_dtype"] == "float32"
        assert loaded.run_config.pretrain.dtype == "float32"

    def test_config_rejects_unknown_dtype_and_engine(self):
        with pytest.raises(ValueError):
            CPDGConfig(dtype="float16").validate()
        with pytest.raises(ValueError):
            CPDGConfig(memory_engine="mmap").validate()

    def test_memory_persist_preserves_dtype(self):
        mem = Memory(3, 2, dtype=np.float32)
        mem.persist(np.ones((3, 2), dtype=np.float64))
        assert mem.state.dtype == np.float32
        clone = mem.clone()
        assert clone.state.dtype == np.float32
