"""Unit and integration tests for the baseline method zoo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (BASELINES, BaselinePretrainConfig, DDGCLCritic,
                             DDGCLEncoder, DGIDiscriminator, GATEncoder,
                             GINEncoder, GPTGNNHeads, GraphSAGEEncoder,
                             SelfRGNNEncoder, baseline_names, build_baseline,
                             ddgcl_loss, dgi_loss, selfrgnn_loss)
from repro.datasets import split_downstream
from repro.graph import chronological_batches
from repro.nn import Tensor
from repro.tasks import FineTuneConfig, FineTuneStrategy, LinkPredictionTask

STATIC_ENCODERS = [GraphSAGEEncoder, GATEncoder, GINEncoder, SelfRGNNEncoder]


class TestStaticEncoders:
    @pytest.mark.parametrize("encoder_cls", STATIC_ENCODERS)
    def test_embedding_shape(self, encoder_cls, tiny_stream, rng):
        enc = encoder_cls(tiny_stream.num_nodes, 8, rng, n_neighbors=3)
        enc.attach(tiny_stream)
        z = enc.compute_embedding(np.array([0, 1, 2]), np.full(3, 25.0))
        assert z.shape == (3, 8)

    @pytest.mark.parametrize("encoder_cls", STATIC_ENCODERS)
    def test_no_future_leakage(self, encoder_cls, tiny_stream, rng):
        """Embeddings at time t must not depend on events after t."""
        enc = encoder_cls(tiny_stream.num_nodes, 8, rng, n_neighbors=3)
        cutoff = tiny_stream.timestamps[tiny_stream.num_events // 2]
        enc.attach(tiny_stream)
        z_full = enc.compute_embedding(np.array([0]), np.array([cutoff])).data
        enc.attach(tiny_stream.slice_time(t_end=cutoff))
        z_cut = enc.compute_embedding(np.array([0]), np.array([cutoff])).data
        np.testing.assert_allclose(z_full, z_cut, atol=1e-10)

    def test_requires_attach(self, rng):
        enc = GraphSAGEEncoder(10, 8, rng)
        with pytest.raises(RuntimeError):
            enc.compute_embedding(np.array([0]), np.array([0.0]))

    def test_memory_protocol_is_noop(self, tiny_stream, rng):
        enc = GraphSAGEEncoder(tiny_stream.num_nodes, 8, rng)
        enc.attach(tiny_stream)
        state, last = enc.memory_snapshot()
        assert state.size == 0
        enc.load_memory(state, last)   # must not raise
        enc.reset_memory()
        enc.flush_messages()
        enc.end_batch()

    def test_isolated_node_embedding_finite(self, tiny_stream, rng):
        enc = GATEncoder(tiny_stream.num_nodes, 8, rng, n_neighbors=3)
        enc.attach(tiny_stream)
        # Query before any events: all nodes are isolated.
        z = enc.compute_embedding(np.array([0, 5]), np.zeros(2))
        assert np.isfinite(z.data).all()


class TestPretrainingLoops:
    @pytest.mark.parametrize("name", baseline_names())
    def test_all_baselines_pretrain_and_finetune(self, name, tiny_stream, rng):
        spec = BASELINES[name]
        enc = spec.build(tiny_stream.num_nodes, 8, rng, n_neighbors=3,
                         memory_dim=8, time_dim=4, edge_dim=4)
        cfg = BaselinePretrainConfig(epochs=1, batch_size=64, seed=0)
        losses = spec.pretrain(enc, tiny_stream, cfg)
        assert len(losses) == int(np.ceil(tiny_stream.num_events / 64))
        assert np.isfinite(losses).all()

        ft = FineTuneConfig(epochs=1, batch_size=64, patience=1, seed=0)
        strategy = FineTuneStrategy(name=name, encoder=enc, eie=None)
        metrics = LinkPredictionTask(strategy, split_downstream(tiny_stream),
                                     ft).run()
        assert np.isfinite(metrics.auc)

    def test_pretraining_moves_static_params(self, tiny_stream, rng):
        spec = BASELINES["graphsage"]
        enc = spec.build(tiny_stream.num_nodes, 8, rng, n_neighbors=3)
        before = {k: v.copy() for k, v in enc.state_dict().items()}
        spec.pretrain(enc, tiny_stream,
                      BaselinePretrainConfig(epochs=1, batch_size=64))
        after = enc.state_dict()
        assert any(np.abs(before[k] - after[k]).max() > 1e-12 for k in before)

    def test_unknown_baseline_rejected(self, rng):
        with pytest.raises(KeyError):
            build_baseline("gpt5", 10, 8, rng)

    def test_registry_covers_paper_method_zoo(self):
        expected = {"graphsage", "gin", "gat", "dgi", "gpt-gnn", "dyrep",
                    "jodie", "tgn", "ddgcl", "selfrgnn"}
        assert set(baseline_names()) == expected


class TestDGI:
    def test_discriminator_scores_shape(self, rng):
        disc = DGIDiscriminator(8, rng)
        scores = disc(Tensor(rng.normal(size=(5, 8))),
                      Tensor(rng.normal(size=8)))
        assert scores.shape == (5,)

    def test_loss_finite_and_differentiable(self, tiny_stream, rng):
        enc = GraphSAGEEncoder(tiny_stream.num_nodes, 8, rng, n_neighbors=3)
        enc.attach(tiny_stream)
        disc = DGIDiscriminator(8, rng)
        nodes = tiny_stream.src[:16]
        ts = tiny_stream.timestamps[:16] + 1.0
        loss = dgi_loss(enc, disc, nodes, ts, rng)
        loss.backward()
        assert np.isfinite(loss.item())
        assert disc.weight.grad is not None


class TestDDGCL:
    def test_encoder_uses_time(self, tiny_stream, rng):
        enc = DDGCLEncoder(tiny_stream.num_nodes, 8, rng, time_dim=4,
                           n_neighbors=3)
        enc.attach(tiny_stream)
        node = np.array([int(tiny_stream.src[10])])
        t_query = tiny_stream.t_max
        z1 = enc.compute_embedding(node, np.array([t_query])).data
        z2 = enc.compute_embedding(node, np.array([t_query + 20.0])).data
        assert np.abs(z1 - z2).max() > 1e-9

    def test_loss_runs(self, tiny_stream, rng):
        enc = DDGCLEncoder(tiny_stream.num_nodes, 8, rng, time_dim=4,
                           n_neighbors=3)
        enc.attach(tiny_stream)
        critic = DDGCLCritic(8, 4, rng)
        loss = ddgcl_loss(enc, critic, tiny_stream.src[:8],
                          tiny_stream.timestamps[:8] + 5.0, 2.0, rng)
        loss.backward()
        assert np.isfinite(loss.item())


class TestSelfRGNN:
    def test_curvature_clipped_negative(self, rng):
        enc = SelfRGNNEncoder(20, 8, rng, n_neighbors=3)
        kappa = enc.curvature(np.array([0.0, 50.0, 100.0])).data
        assert (kappa < 0).all()
        assert (kappa >= -5.0).all()

    def test_loss_is_nonnegative(self, tiny_stream, rng):
        enc = SelfRGNNEncoder(tiny_stream.num_nodes, 8, rng, n_neighbors=3)
        enc.attach(tiny_stream)
        loss = selfrgnn_loss(enc, tiny_stream.src[:8],
                             tiny_stream.timestamps[:8], 1.0)
        assert loss.item() >= 0.0


class TestGPTGNN:
    def test_heads_without_edge_features(self, rng):
        heads = GPTGNNHeads(8, 0, rng)
        assert not hasattr(heads, "attr_net")

    def test_loss_includes_attribute_term(self, tiny_stream, rng):
        from repro.baselines import gptgnn_loss
        from repro.graph import chronological_batches
        enc = GraphSAGEEncoder(tiny_stream.num_nodes, 8, rng, n_neighbors=3)
        enc.attach(tiny_stream)
        heads = GPTGNNHeads(8, tiny_stream.edge_feats.shape[1], rng)
        batch = next(chronological_batches(tiny_stream, 32, rng))
        with_attr = gptgnn_loss(enc, heads, batch, tiny_stream.edge_feats)
        without = gptgnn_loss(enc, heads, batch, None)
        assert with_attr.item() > without.item()
