"""Tests for stream analytics (repro.graph.analysis) and IO (repro.graph.io)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (EventStream, burstiness, degree_distribution,
                         inter_event_times, load_npz, read_jodie_csv,
                         recency_gini, repeat_interaction_rate, save_npz,
                         temporal_profile, write_jodie_csv)


def regular_stream(n=50):
    return EventStream(src=[0] * n, dst=[1] * n,
                       timestamps=np.arange(n, dtype=float), num_nodes=2)


def bursty_stream():
    # 40 events packed into [0, 1), then 2 stragglers far out.
    ts = np.concatenate([np.linspace(0, 1, 40), [50.0, 100.0]])
    return EventStream(src=[0] * 42, dst=[1] * 42, timestamps=ts, num_nodes=2)


class TestAnalysis:
    def test_inter_event_times(self):
        gaps = inter_event_times(regular_stream(5))
        np.testing.assert_allclose(gaps, np.ones(4))

    def test_inter_event_times_single_event(self):
        stream = EventStream(src=[0], dst=[1], timestamps=[0.0], num_nodes=2)
        assert len(inter_event_times(stream)) == 0

    def test_burstiness_regular_is_negative_one(self):
        assert burstiness(regular_stream()) == pytest.approx(-1.0)

    def test_burstiness_bursty_is_positive(self):
        assert burstiness(bursty_stream()) > 0.3

    def test_degree_distribution_counts_both_endpoints(self):
        stream = EventStream(src=[0, 0], dst=[1, 2], timestamps=[0.0, 1.0],
                             num_nodes=4)
        degrees = degree_distribution(stream)
        assert degrees.tolist() == [2, 1, 1, 0]

    def test_recency_gini_uniform_low_concentrated_high(self):
        uniform = regular_stream(200)
        assert recency_gini(uniform) < 0.1
        concentrated = bursty_stream()
        assert recency_gini(concentrated) > recency_gini(uniform)

    def test_repeat_rate(self):
        stream = EventStream(src=[0, 0, 0], dst=[1, 1, 2],
                             timestamps=[0.0, 1.0, 2.0], num_nodes=3)
        assert repeat_interaction_rate(stream) == pytest.approx(1 / 3)

    def test_repeat_rate_undirected(self):
        stream = EventStream(src=[0, 1], dst=[1, 0], timestamps=[0.0, 1.0],
                             num_nodes=2)
        assert repeat_interaction_rate(stream) == pytest.approx(0.5)

    def test_profile_fields(self, tiny_stream):
        profile = temporal_profile(tiny_stream)
        assert profile.num_events == tiny_stream.num_events
        assert profile.num_active_nodes <= tiny_stream.num_nodes
        assert -1.0 <= profile.burstiness <= 1.0
        assert 0.0 <= profile.repeat_rate <= 1.0
        row = profile.as_row()
        assert {"events", "nodes", "burstiness", "repeat rate"} <= set(row)


class TestJodieCSV:
    def test_roundtrip(self, tiny_labeled_stream, tmp_path):
        path = str(tmp_path / "stream.csv")
        write_jodie_csv(tiny_labeled_stream, path)
        loaded = read_jodie_csv(path)
        assert loaded.num_events == tiny_labeled_stream.num_events
        np.testing.assert_array_equal(loaded.src, tiny_labeled_stream.src)
        np.testing.assert_allclose(loaded.timestamps,
                                   tiny_labeled_stream.timestamps)
        np.testing.assert_array_equal(loaded.labels,
                                      tiny_labeled_stream.labels)
        np.testing.assert_allclose(loaded.edge_feats,
                                   tiny_labeled_stream.edge_feats, rtol=1e-9)

    def test_item_offset_restored(self, tiny_labeled_stream, tmp_path):
        path = str(tmp_path / "stream.csv")
        write_jodie_csv(tiny_labeled_stream, path)
        loaded = read_jodie_csv(path)
        num_users = loaded.metadata["num_users"]
        assert (loaded.dst >= num_users).all()
        assert (loaded.src < num_users).all()

    def test_read_plain_csv_without_features(self, tmp_path):
        path = tmp_path / "plain.csv"
        path.write_text("user_id,item_id,timestamp,state_label\n"
                        "0,0,1.0,0\n1,1,2.0,1\n0,1,3.0,0\n")
        stream = read_jodie_csv(str(path))
        assert stream.num_events == 3
        assert stream.edge_feats is None
        assert stream.labels.tolist() == [0, 1, 0]
        assert stream.num_nodes == 4   # 2 users + 2 items

    def test_read_empty_csv_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("user_id,item_id,timestamp,state_label\n")
        with pytest.raises(ValueError):
            read_jodie_csv(str(path))

    def test_write_requires_num_users(self, tmp_path):
        stream = EventStream(src=[0], dst=[1], timestamps=[0.0], num_nodes=2)
        with pytest.raises(ValueError):
            write_jodie_csv(stream, str(tmp_path / "x.csv"))


class TestNpz:
    def test_roundtrip_with_labels_and_features(self, tiny_labeled_stream,
                                                tmp_path):
        path = str(tmp_path / "stream.npz")
        save_npz(tiny_labeled_stream, path)
        loaded = load_npz(path)
        np.testing.assert_array_equal(loaded.src, tiny_labeled_stream.src)
        np.testing.assert_array_equal(loaded.dst, tiny_labeled_stream.dst)
        np.testing.assert_allclose(loaded.timestamps,
                                   tiny_labeled_stream.timestamps)
        np.testing.assert_array_equal(loaded.labels,
                                      tiny_labeled_stream.labels)
        assert loaded.num_nodes == tiny_labeled_stream.num_nodes

    def test_roundtrip_minimal_stream(self, tmp_path):
        stream = EventStream(src=[0, 1], dst=[2, 2],
                             timestamps=[0.0, 1.0], num_nodes=3)
        path = str(tmp_path / "minimal.npz")
        save_npz(stream, path)
        loaded = load_npz(path)
        assert loaded.edge_feats is None
        assert loaded.labels is None
        assert loaded.num_events == 2
