"""Unit tests for dataset generators, universes and transfer splits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (DEFAULT_SPLIT_TIME, LABELED_DATASETS, SMALL,
                            BipartiteInteractionGenerator, DatasetScale,
                            FieldedUniverse, FieldSpec, InteractionConfig,
                            LabeledConfig, LabeledInteractionGenerator,
                            TransferSetting, amazon_universe, gowalla_universe,
                            labeled_stream, make_transfer_split,
                            meituan_stream, node_classification_split,
                            split_downstream)


def small_config(**kwargs):
    defaults = dict(num_users=15, num_items=10, num_events=150,
                    time_span=20.0, candidate_size=8)
    defaults.update(kwargs)
    return InteractionConfig(**defaults)


class TestGenerator:
    def test_determinism(self):
        a = BipartiteInteractionGenerator(small_config(), seed=3).generate()
        b = BipartiteInteractionGenerator(small_config(), seed=3).generate()
        np.testing.assert_array_equal(a.src, b.src)
        np.testing.assert_array_equal(a.dst, b.dst)
        np.testing.assert_allclose(a.timestamps, b.timestamps)

    def test_different_seeds_differ(self):
        a = BipartiteInteractionGenerator(small_config(), seed=3).generate()
        b = BipartiteInteractionGenerator(small_config(), seed=4).generate()
        assert not np.array_equal(a.dst, b.dst)

    def test_bipartite_id_ranges(self):
        stream = BipartiteInteractionGenerator(small_config(), seed=0).generate()
        assert stream.src.max() < 15
        assert stream.dst.min() >= 15
        assert stream.dst.max() < 25

    def test_timestamps_sorted_in_span(self):
        stream = BipartiteInteractionGenerator(small_config(), seed=0).generate()
        assert (np.diff(stream.timestamps) >= 0).all()
        assert stream.t_min >= 0.0
        assert stream.t_max < 20.0

    def test_edge_features_shape(self):
        stream = BipartiteInteractionGenerator(
            small_config(edge_feat_dim=6), seed=0).generate()
        assert stream.edge_feats.shape == (150, 6)

    def test_edge_features_disabled(self):
        stream = BipartiteInteractionGenerator(
            small_config(edge_feat_dim=0), seed=0).generate()
        assert stream.edge_feats is None

    def test_preference_drives_item_choice(self):
        """With a strong preference term, users concentrate on few items."""
        concentrated = BipartiteInteractionGenerator(
            small_config(preference_scale=8.0, burst_strength=0.0), seed=1
        ).generate()
        uniform = BipartiteInteractionGenerator(
            small_config(preference_scale=0.0, burst_strength=0.0), seed=1
        ).generate()

        def mean_user_entropy(stream):
            entropies = []
            for user in range(15):
                items = stream.dst[stream.src == user]
                if len(items) < 5:
                    continue
                _, counts = np.unique(items, return_counts=True)
                p = counts / counts.sum()
                entropies.append(-(p * np.log(p)).sum())
            return np.mean(entropies)

        assert mean_user_entropy(concentrated) < mean_user_entropy(uniform)

    def test_bursts_shift_interactions_into_window(self):
        """A strong burst should lift an item's share inside its window."""
        config = small_config(num_events=600, burst_rate=0.0,
                              burst_strength=0.0, time_span=50.0)
        gen = BipartiteInteractionGenerator(config, seed=5)
        # Inject one huge burst manually for item 0.
        gen.bursts = [(0, 10.0, 20.0, 50.0)]
        stream = gen.generate()
        items = stream.dst - 15
        in_window = (stream.timestamps >= 10.0) & (stream.timestamps < 20.0)
        share_in = (items[in_window] == 0).mean()
        share_out = (items[~in_window] == 0).mean()
        assert share_in > share_out + 0.2


class TestSharedUsers:
    def test_universe_shares_user_latents(self):
        uni = amazon_universe(SMALL)
        s1 = uni.stream("beauty")
        s2 = uni.stream("luxury")
        # Streams use disjoint item id blocks but the same user block.
        assert set(s1.src.tolist()) <= set(range(uni.num_users))
        assert set(s2.src.tolist()) <= set(range(uni.num_users))
        assert set(s1.dst.tolist()).isdisjoint(set(s2.dst.tolist()))

    def test_item_offsets_tile_id_space(self):
        uni = gowalla_universe(SMALL)
        offsets = [uni.item_offset(f) for f in uni.field_names()]
        assert offsets == sorted(offsets)
        assert offsets[0] == uni.num_users
        assert uni.num_nodes == uni.num_users + 3 * uni.items_per_field

    def test_unknown_field_raises(self):
        uni = amazon_universe(SMALL)
        with pytest.raises(KeyError):
            uni.stream("nonexistent")

    def test_stream_caching(self):
        uni = amazon_universe(SMALL)
        assert uni.stream("beauty") is uni.stream("beauty")

    def test_shared_users_mismatch_rejected(self):
        from repro.datasets import SharedUsers
        bad = SharedUsers(community=np.zeros(3, dtype=int),
                          pref=np.zeros((3, 2)), activity=np.ones(3) / 3)
        with pytest.raises(ValueError):
            BipartiteInteractionGenerator(small_config(), seed=0,
                                          shared_users=bad)


class TestLabeledGenerator:
    def test_labels_present_and_binary(self):
        stream = labeled_stream("mooc", SMALL)
        assert stream.labels is not None
        assert set(np.unique(stream.labels)) <= {0, 1}

    def test_absorbing_mode_is_monotone_per_user(self):
        """With recovery disabled, a flip is permanent (ban semantics)."""
        base = InteractionConfig(num_users=20, num_items=12, num_events=400,
                                 time_span=30.0, candidate_size=8)
        config = LabeledConfig(base=base, deviant_fraction=0.3,
                               threshold_mean=2.0, susceptible_fraction=0.6,
                               recovery_factor=None)
        stream = LabeledInteractionGenerator(config, seed=3).generate()
        for user in np.unique(stream.src):
            user_labels = stream.labels[stream.src == user]
            assert (np.diff(user_labels) >= 0).all()

    def test_default_mode_allows_recovery(self):
        """With recovery on, at least one user returns to the negative
        state — labels track recent behaviour, not node identity."""
        stream = labeled_stream("wikipedia", SMALL)
        recovered = False
        for user in np.unique(stream.src):
            user_labels = stream.labels[stream.src == user]
            if (np.diff(user_labels) < 0).any():
                recovered = True
                break
        assert recovered

    def test_metadata_records_process(self):
        stream = labeled_stream("reddit", SMALL)
        assert "deviant_items" in stream.metadata
        assert 0.0 <= stream.metadata["positive_rate"] <= 1.0

    def test_all_registered_datasets_have_positives(self):
        for name in LABELED_DATASETS:
            stream = labeled_stream(name, SMALL)
            assert stream.labels.sum() > 0, name

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            labeled_stream("imaginary", SMALL)


class TestRegistry:
    def test_meituan_span(self):
        stream = meituan_stream(SMALL)
        assert stream.t_max <= 42.0

    def test_scale_reduces_events(self):
        big = amazon_universe().stream("beauty")
        small = amazon_universe(SMALL).stream("beauty")
        assert small.num_events < big.num_events

    def test_dataset_scale_scaled(self):
        scaled = DatasetScale().scaled(0.5)
        assert scaled.num_users == 50
        assert scaled.events_main == 1300

    def test_registry_reproducibility(self):
        a = meituan_stream(SMALL)
        b = meituan_stream(SMALL)
        np.testing.assert_array_equal(a.dst, b.dst)


class TestTransferSplits:
    def test_time_transfer_boundaries(self):
        uni = amazon_universe(SMALL)
        split = make_transfer_split("time", uni.stream("beauty"),
                                    uni.stream("arts"), DEFAULT_SPLIT_TIME)
        assert split.pretrain.t_max < DEFAULT_SPLIT_TIME
        assert split.downstream.train.t_min >= DEFAULT_SPLIT_TIME

    def test_field_transfer_uses_source_downstream_range(self):
        uni = amazon_universe(SMALL)
        split = make_transfer_split("field", uni.stream("beauty"),
                                    uni.stream("arts"), DEFAULT_SPLIT_TIME)
        # Pre-training comes from the arts item block.
        arts_offset = uni.item_offset("arts")
        assert (split.pretrain.dst >= arts_offset).all()
        assert split.pretrain.t_min >= DEFAULT_SPLIT_TIME

    def test_time_field_transfer_uses_source_history(self):
        uni = amazon_universe(SMALL)
        split = make_transfer_split("time+field", uni.stream("beauty"),
                                    uni.stream("arts"), DEFAULT_SPLIT_TIME)
        arts_offset = uni.item_offset("arts")
        assert (split.pretrain.dst >= arts_offset).all()
        assert split.pretrain.t_max < DEFAULT_SPLIT_TIME

    def test_field_transfer_requires_source(self):
        uni = amazon_universe(SMALL)
        with pytest.raises(ValueError):
            make_transfer_split("field", uni.stream("beauty"), None,
                                DEFAULT_SPLIT_TIME)

    def test_downstream_split_chronological(self):
        uni = amazon_universe(SMALL)
        split = make_transfer_split("time", uni.stream("beauty"),
                                    None, DEFAULT_SPLIT_TIME)
        down = split.downstream
        assert down.train.t_max <= down.val.t_min + 1e-9
        assert down.val.t_max <= down.test.t_min + 1e-9

    def test_setting_enum_accepts_strings(self):
        assert TransferSetting("time") is TransferSetting.TIME
        assert TransferSetting("time+field") is TransferSetting.TIME_FIELD

    def test_node_classification_split_ratios(self):
        stream = labeled_stream("wikipedia", SMALL)
        pretrain, down = node_classification_split(stream)
        total = stream.num_events
        assert pretrain.num_events == pytest.approx(0.6 * total, abs=2)
        assert down.train.num_events == pytest.approx(0.2 * total, abs=2)
        assert down.val.num_events == pytest.approx(0.1 * total, abs=2)
        assert down.test.num_events == pytest.approx(0.1 * total, abs=2)
