"""Unit tests for optimizers and loss functions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (SGD, Adam, MLP, Parameter, Tensor, bce_with_logits,
                      binary_cross_entropy, clip_grad_norm, info_nce_loss,
                      jsd_mutual_information_loss, mse_loss, softplus,
                      triplet_margin_loss)
from repro.nn import functional as F


class TestSGD:
    def test_basic_descent(self):
        p = Parameter(np.array([10.0]))
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            (p ** 2.0).sum().backward()
            opt.step()
        assert abs(p.data[0]) < 1e-3

    def test_momentum_accelerates(self):
        def losses_after(momentum):
            p = Parameter(np.array([10.0]))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                (p ** 2.0).sum().backward()
                opt.step()
            return abs(p.data[0])

        assert losses_after(0.9) < losses_after(0.0)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (p * 0.0).sum().backward()
        opt.step()
        assert p.data[0] < 1.0

    def test_rejects_nonpositive_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_skips_params_without_grad(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad accumulated — must not crash
        assert p.data[0] == 1.0


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            (p ** 2.0).sum().backward()
            opt.step()
        np.testing.assert_allclose(p.data, np.zeros(2), atol=1e-3)

    def test_bias_correction_first_step(self):
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.5)
        opt.zero_grad()
        (p * 2.0).sum().backward()
        opt.step()
        # With bias correction, the first step has magnitude ~lr.
        assert abs(p.data[0] - 0.5) < 1e-6

    def test_trains_mlp_to_fit_xor(self, rng):
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([0, 1, 1, 0], dtype=float)
        mlp = MLP([2, 8, 1], rng, activation="tanh")
        opt = Adam(mlp.parameters(), lr=0.05)
        for _ in range(400):
            opt.zero_grad()
            logits = mlp(Tensor(x)).reshape(-1)
            loss = bce_with_logits(logits, y)
            loss.backward()
            opt.step()
        probs = F.sigmoid(mlp(Tensor(x)).reshape(-1)).data
        assert ((probs > 0.5).astype(float) == y).all()


class TestClipGradNorm:
    def test_clips_to_max_norm(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        pre = clip_grad_norm([p], 1.0)
        assert pre == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_leaves_small_gradients(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.1, 0.1])
        clip_grad_norm([p], 5.0)
        np.testing.assert_allclose(p.grad, [0.1, 0.1])


class TestLosses:
    def test_triplet_zero_when_margin_satisfied(self, rng):
        anchor = Tensor(np.zeros((2, 3)))
        positive = Tensor(np.zeros((2, 3)))
        negative = Tensor(np.full((2, 3), 10.0))
        loss = triplet_margin_loss(anchor, positive, negative, margin=1.0)
        assert loss.item() == pytest.approx(0.0, abs=1e-5)

    def test_triplet_equals_margin_when_views_collide(self, rng):
        x = Tensor(rng.normal(size=(3, 4)))
        loss = triplet_margin_loss(x, x, x, margin=0.7)
        assert loss.item() == pytest.approx(0.7, abs=1e-5)

    def test_triplet_pulls_positive_closer(self, rng):
        anchor = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        positive = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        negative = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        loss = triplet_margin_loss(anchor, positive, negative, margin=5.0)
        loss.backward()
        # Moving positives along -grad must reduce d(a, p).
        before = np.linalg.norm(anchor.data - positive.data)
        after = np.linalg.norm(anchor.data - (positive.data - 0.01 * positive.grad))
        assert after < before

    def test_bce_with_logits_matches_probability_form(self, rng):
        logits = Tensor(rng.normal(size=10))
        labels = rng.integers(0, 2, size=10)
        a = bce_with_logits(logits, labels).item()
        b = binary_cross_entropy(F.sigmoid(logits), labels).item()
        assert a == pytest.approx(b, rel=1e-6)

    def test_bce_with_logits_extreme_stable(self):
        logits = Tensor([1000.0, -1000.0])
        labels = np.array([1.0, 0.0])
        assert bce_with_logits(logits, labels).item() == pytest.approx(0.0, abs=1e-6)

    def test_bce_perfect_prediction_near_zero(self):
        logits = Tensor([20.0, -20.0])
        assert bce_with_logits(logits, np.array([1, 0])).item() < 1e-6

    def test_softplus_positive_and_asymptotic(self):
        x = Tensor([-100.0, 0.0, 100.0])
        out = softplus(x).data
        assert out[0] == pytest.approx(0.0, abs=1e-9)
        assert out[1] == pytest.approx(np.log(2.0), rel=1e-6)
        assert out[2] == pytest.approx(100.0, rel=1e-6)

    def test_jsd_loss_decreases_with_separation(self, rng):
        good = jsd_mutual_information_loss(Tensor([5.0, 5.0]), Tensor([-5.0, -5.0]))
        bad = jsd_mutual_information_loss(Tensor([0.0, 0.0]), Tensor([0.0, 0.0]))
        assert good.item() < bad.item()

    def test_info_nce_prefers_aligned_positive(self, rng):
        anchor = Tensor(rng.normal(size=(4, 8)))
        negatives = Tensor(rng.normal(size=(4, 5, 8)))
        aligned = info_nce_loss(anchor, anchor, negatives)
        random = info_nce_loss(anchor, Tensor(rng.normal(size=(4, 8))), negatives)
        assert aligned.item() < random.item()

    def test_mse_loss_zero_on_match(self, rng):
        x = Tensor(rng.normal(size=(3, 2)))
        assert mse_loss(x, x.copy()).item() == pytest.approx(0.0, abs=1e-12)
