"""Unit tests for contrastive objectives, pretext, EIE and checkpoints."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (CheckpointSchedule, CPDGConfig, EIEModule, EIE_FUSERS,
                        LinkPredictionHead, MemoryCheckpoints,
                        StructuralContrast, TemporalContrast,
                        subgraph_readout)
from repro.graph import NeighborFinder
from repro.nn import Tensor


class TestSubgraphReadout:
    def test_mean_pooling(self):
        memory = Tensor(np.arange(12, dtype=float).reshape(4, 3))
        out = subgraph_readout(memory, [np.array([0, 2]), np.array([3])])
        np.testing.assert_allclose(out.data[0], (memory.data[0] + memory.data[2]) / 2)
        np.testing.assert_allclose(out.data[1], memory.data[3])

    def test_empty_subgraph_pools_to_zero(self):
        memory = Tensor(np.ones((4, 3)))
        out = subgraph_readout(memory, [np.array([], dtype=int), np.array([1])])
        np.testing.assert_allclose(out.data[0], np.zeros(3))
        np.testing.assert_allclose(out.data[1], np.ones(3))

    def test_all_empty(self):
        memory = Tensor(np.ones((4, 3)))
        out = subgraph_readout(memory, [np.array([], dtype=int)] * 2)
        assert out.shape == (2, 3)
        assert out.data.sum() == 0.0

    def test_gradients_flow_to_memory(self):
        memory = Tensor(np.ones((4, 3)), requires_grad=True)
        out = subgraph_readout(memory, [np.array([0, 1])])
        out.sum().backward()
        np.testing.assert_allclose(memory.grad[0], np.full(3, 0.5))
        np.testing.assert_allclose(memory.grad[2], np.zeros(3))


class TestContrasts:
    def test_temporal_contrast_loss_scalar(self, tiny_stream, rng):
        finder = NeighborFinder(tiny_stream)
        contrast = TemporalContrast(finder, eta=3, depth=2, seed=0)
        memory = Tensor(rng.normal(size=(tiny_stream.num_nodes, 8)),
                        requires_grad=True)
        nodes = tiny_stream.src[:6]
        ts = tiny_stream.timestamps[:6] + 1.0
        z = Tensor(rng.normal(size=(6, 8)), requires_grad=True)
        loss = contrast.loss(z, memory, nodes, ts)
        assert loss.size == 1
        loss.backward()
        assert z.grad is not None

    def test_temporal_pairs_differ(self, tiny_stream):
        finder = NeighborFinder(tiny_stream)
        contrast = TemporalContrast(finder, eta=2, depth=1, tau=0.05, seed=0)
        nodes = tiny_stream.src[-5:]
        ts = np.full(5, tiny_stream.t_max + 1.0)
        positives, negatives = contrast.sample_pairs(nodes, ts)
        assert len(positives) == len(negatives) == 5
        # At least one node should produce different positive vs negative
        # subgraphs given enough history and a sharp temperature.
        differs = any(set(p.tolist()) != set(n.tolist())
                      for p, n in zip(positives, negatives)
                      if len(p) and len(n))
        assert differs

    def test_structural_negative_is_other_node(self, tiny_stream, rng):
        finder = NeighborFinder(tiny_stream)
        contrast = StructuralContrast(finder, epsilon=3, depth=2, seed=0)
        nodes = tiny_stream.src[:4]
        ts = np.full(4, tiny_stream.t_max)
        positives, negatives = contrast.sample_pairs(nodes, ts,
                                                     tiny_stream.num_nodes)
        assert len(positives) == len(negatives) == 4

    def test_structural_loss_backward(self, tiny_stream, rng):
        finder = NeighborFinder(tiny_stream)
        contrast = StructuralContrast(finder, epsilon=3, depth=2, seed=0)
        memory = Tensor(rng.normal(size=(tiny_stream.num_nodes, 8)),
                        requires_grad=True)
        z = Tensor(rng.normal(size=(4, 8)), requires_grad=True)
        loss = contrast.loss(z, memory, tiny_stream.src[:4],
                             np.full(4, tiny_stream.t_max),
                             tiny_stream.num_nodes)
        loss.backward()
        assert memory.grad is not None


class TestLinkPredictionHead:
    def test_score_shape(self, rng):
        head = LinkPredictionHead(8, rng)
        z = Tensor(rng.normal(size=(5, 8)))
        assert head.score(z, z).shape == (5,)

    def test_probability_in_unit_interval(self, rng):
        head = LinkPredictionHead(8, rng)
        z = Tensor(rng.normal(size=(5, 8)))
        probs = head.probability(z, z).data
        assert ((probs > 0) & (probs < 1)).all()

    def test_loss_decreases_under_training(self, rng):
        from repro.nn import Adam
        head = LinkPredictionHead(4, rng)
        z_src = Tensor(rng.normal(size=(32, 4)))
        z_dst = Tensor(z_src.data + 0.1 * rng.normal(size=(32, 4)))
        z_neg = Tensor(rng.normal(size=(32, 4)) * 3.0)
        opt = Adam(head.parameters(), lr=0.01)
        first = None
        for step in range(60):
            loss = head.loss(z_src, z_dst, z_neg)
            if step == 0:
                first = loss.item()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < first


class TestCheckpoints:
    def test_schedule_uniform_and_ends_at_final_step(self):
        schedule = CheckpointSchedule(total_steps=100, num_checkpoints=5)
        assert schedule.steps == [20, 40, 60, 80, 100]

    def test_schedule_caps_at_total_steps(self):
        schedule = CheckpointSchedule(total_steps=3, num_checkpoints=10)
        assert schedule.steps == [1, 2, 3]

    def test_schedule_rejects_zero_steps(self):
        with pytest.raises(ValueError):
            CheckpointSchedule(0, 5)

    def test_checkpoints_store_copies(self):
        checkpoints = MemoryCheckpoints()
        state = np.zeros((2, 2))
        checkpoints.add(state)
        state[0, 0] = 5.0
        assert checkpoints[0][0, 0] == 0.0

    def test_truncate_keeps_suffix(self):
        checkpoints = MemoryCheckpoints()
        for v in range(5):
            checkpoints.add(np.full((1, 1), float(v)))
        tail = checkpoints.truncate(2)
        assert len(tail) == 2
        assert tail[0][0, 0] == 3.0
        assert tail[1][0, 0] == 4.0


class TestEIE:
    def make_checkpoints(self, rng, length=4, nodes=6, dim=5):
        checkpoints = MemoryCheckpoints()
        for _ in range(length):
            checkpoints.add(rng.normal(size=(nodes, dim)))
        return checkpoints

    @pytest.mark.parametrize("fuser", EIE_FUSERS)
    def test_fusers_output_shapes(self, fuser, rng):
        eie = EIEModule(self.make_checkpoints(rng), fuser, out_dim=3, rng=rng)
        z = Tensor(rng.normal(size=(4, 7)))
        out = eie(z, np.array([0, 1, 2, 3]))
        assert out.shape == (4, 10)
        assert eie.enhanced_dim(7) == 10

    def test_mean_fuser_matches_numpy(self, rng):
        checkpoints = self.make_checkpoints(rng)
        eie = EIEModule(checkpoints, "mean", out_dim=3, rng=rng)
        nodes = np.array([1, 4])
        fused = eie.fuse(nodes).data
        expected = np.mean([snap[nodes] for snap in checkpoints.as_list()],
                           axis=0)
        np.testing.assert_allclose(fused, expected)

    def test_gru_fuser_order_sensitive(self, rng):
        forward = MemoryCheckpoints()
        backward = MemoryCheckpoints()
        snaps = [rng.normal(size=(3, 4)) for _ in range(3)]
        for snap in snaps:
            forward.add(snap)
        for snap in reversed(snaps):
            backward.add(snap)
        seed_rng = np.random.default_rng(0)
        eie_f = EIEModule(forward, "gru", out_dim=2, rng=np.random.default_rng(0))
        eie_b = EIEModule(backward, "gru", out_dim=2, rng=np.random.default_rng(0))
        nodes = np.arange(3)
        assert np.abs(eie_f.fuse(nodes).data - eie_b.fuse(nodes).data).max() > 1e-9

    def test_rejects_unknown_fuser(self, rng):
        with pytest.raises(ValueError):
            EIEModule(self.make_checkpoints(rng), "transformer", 3, rng)

    def test_rejects_empty_checkpoints(self, rng):
        with pytest.raises(ValueError):
            EIEModule(MemoryCheckpoints(), "mean", 3, rng)

    def test_gradients_reach_fuser_params(self, rng):
        eie = EIEModule(self.make_checkpoints(rng), "attn", out_dim=3, rng=rng)
        z = Tensor(rng.normal(size=(2, 4)))
        out = eie(z, np.array([0, 1]))
        (out ** 2.0).sum().backward()
        assert all(p.grad is not None for p in eie.parameters())


class TestCPDGConfig:
    def test_validate_accepts_defaults(self):
        CPDGConfig().validate()

    def test_validate_rejects_bad_beta(self):
        with pytest.raises(ValueError):
            CPDGConfig(beta=1.5).validate()

    def test_validate_rejects_bad_width(self):
        with pytest.raises(ValueError):
            CPDGConfig(eta=0).validate()

    def test_with_overrides_functional(self):
        base = CPDGConfig()
        changed = base.with_overrides(beta=0.9)
        assert changed.beta == 0.9
        assert base.beta == 0.5
