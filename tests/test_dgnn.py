"""Unit tests for the DGNN framework (memory, messages, encoders)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dgnn import (BACKBONES, AttentionMessage, DGNNEncoder, GRUUpdater,
                        IdentityMessage, LastAggregator, LSTMUpdater,
                        MeanAggregator, Memory, MLPMessage, RawMessageStore,
                        RNNUpdater, TimeEncoder, make_aggregator, make_encoder,
                        make_updater)
from repro.graph import chronological_batches
from repro.nn import Tensor
from repro.nn import functional as F


class TestTimeEncoder:
    def test_output_shape(self):
        enc = TimeEncoder(8)
        out = enc(np.array([0.0, 1.0, 100.0]))
        assert out.shape == (3, 8)

    def test_zero_delta_is_cos_of_phase(self):
        enc = TimeEncoder(4)
        out = enc(np.array([0.0]))
        np.testing.assert_allclose(out.data, np.cos(enc.phase.data)[None, :])

    def test_distinguishes_scales(self):
        enc = TimeEncoder(16)
        short = enc(np.array([0.1])).data
        long = enc(np.array([500.0])).data
        assert np.abs(short - long).max() > 0.1

    def test_gradient_flows_to_frequencies(self):
        enc = TimeEncoder(4)
        out = enc(Tensor(np.array([1.0, 2.0])))
        (out ** 2.0).sum().backward()
        assert enc.omega.grad is not None


class TestMemory:
    def test_zero_initialisation(self):
        mem = Memory(5, 3)
        assert mem.state.sum() == 0.0
        assert mem.last_update.sum() == 0.0

    def test_persist_and_reset(self):
        mem = Memory(4, 2)
        mem.persist(np.ones((4, 2)))
        assert mem.state.sum() == 8.0
        mem.reset()
        assert mem.state.sum() == 0.0

    def test_persist_shape_mismatch(self):
        with pytest.raises(ValueError):
            Memory(4, 2).persist(np.ones((3, 2)))

    def test_touch_takes_maximum(self):
        mem = Memory(3, 2)
        mem.touch(np.array([0, 0]), np.array([5.0, 2.0]))
        assert mem.last_update[0] == 5.0

    def test_checkpoint_is_a_copy(self):
        mem = Memory(2, 2)
        snap = mem.checkpoint()
        mem.persist(np.ones((2, 2)))
        assert snap.sum() == 0.0

    def test_clone_independent(self):
        mem = Memory(2, 2)
        other = mem.clone()
        other.state[0, 0] = 9.0
        assert mem.state[0, 0] == 0.0


class TestRawMessageStore:
    @staticmethod
    def _stage(store, nodes, times):
        nodes = np.asarray(nodes, dtype=np.int64)
        k = len(nodes)
        store.stage(nodes, np.zeros((k, 2)), np.ones((k, 2)),
                    np.zeros(k), np.asarray(times, dtype=np.float64),
                    np.arange(k))

    def test_last_per_node_selects_most_recent(self):
        store = RawMessageStore(keep_all=False)
        self._stage(store, [1], [1.0])
        self._stage(store, [1], [2.0])
        staged = store.pop_all()
        nodes, rows = staged.last_per_node()
        np.testing.assert_array_equal(nodes, [1])
        assert staged.time[rows[0]] == 2.0

    def test_groups_cover_all_staged_rows(self):
        store = RawMessageStore(keep_all=True)
        self._stage(store, [1, 3], [1.0, 1.0])
        self._stage(store, [1], [2.0])
        staged = store.pop_all()
        nodes, groups = staged.groups_per_node()
        np.testing.assert_array_equal(nodes, [1, 3])
        assert len(groups) == 3
        assert (nodes[groups] == staged.nodes).all()

    def test_pop_clears(self):
        store = RawMessageStore()
        self._stage(store, [0], [0.0])
        assert len(store) == 1
        store.pop_all()
        assert len(store) == 0
        assert store.pop_all() is None

    def test_empty_stage_is_ignored(self):
        store = RawMessageStore()
        self._stage(store, [], [])
        assert len(store) == 0
        assert store.pop_all() is None


class TestMessagesAndUpdaters:
    def test_identity_message_concatenates(self, rng):
        msg = IdentityMessage(4, 2, 3)
        out = msg(Tensor(np.ones((2, 4))), Tensor(np.zeros((2, 4))),
                  Tensor(np.ones((2, 2))), Tensor(np.ones((2, 3))))
        assert out.shape == (2, 13)
        assert msg.output_dim == 13

    def test_mlp_message_compresses(self, rng):
        msg = MLPMessage(4, 2, 3, output_dim=5, rng=rng)
        out = msg(Tensor(np.ones((2, 4))), Tensor(np.zeros((2, 4))),
                  Tensor(np.ones((2, 2))), Tensor(np.ones((2, 3))))
        assert out.shape == (2, 5)

    def test_attention_message_dims(self, rng):
        msg = AttentionMessage(4, 2, 3, rng)
        out = msg(Tensor(np.ones((2, 4))), Tensor(np.zeros((2, 4))),
                  Tensor(np.ones((2, 2))), Tensor(np.ones((2, 3))))
        assert out.shape == (2, msg.output_dim)

    @pytest.mark.parametrize("name,cls", [("gru", GRUUpdater),
                                          ("rnn", RNNUpdater),
                                          ("lstm", LSTMUpdater)])
    def test_make_updater(self, name, cls, rng):
        updater = make_updater(name, 6, 4, rng)
        assert isinstance(updater, cls)
        out = updater(Tensor(np.ones((2, 6))), Tensor(np.zeros((2, 4))))
        assert out.shape == (2, 4)

    def test_make_updater_unknown(self, rng):
        with pytest.raises(ValueError):
            make_updater("transformer", 4, 4, rng)

    def test_aggregators(self, rng):
        last = make_aggregator("last")
        mean = make_aggregator("mean")
        msgs = [Tensor(np.full((1, 2), v)) for v in (1.0, 3.0)]
        np.testing.assert_allclose(last(msgs).data, [[3.0, 3.0]])
        np.testing.assert_allclose(mean(msgs).data, [[2.0, 2.0]])
        with pytest.raises(ValueError):
            make_aggregator("max")


class TestEncoder:
    @pytest.mark.parametrize("backbone", BACKBONES)
    def test_backbones_produce_embeddings(self, backbone, tiny_stream, rng):
        enc = make_encoder(backbone, tiny_stream.num_nodes, rng,
                           memory_dim=8, embed_dim=8, time_dim=4, edge_dim=4,
                           n_neighbors=3)
        enc.attach(tiny_stream)
        z = enc.compute_embedding(np.array([0, 1]), np.array([10.0, 10.0]))
        assert z.shape == (2, 8)

    def test_unknown_backbone(self, rng):
        with pytest.raises(ValueError):
            make_encoder("gpt", 10, rng)

    def test_embedding_requires_attach(self, rng):
        enc = make_encoder("tgn", 10, rng, memory_dim=4, embed_dim=4,
                           time_dim=2, edge_dim=0, n_neighbors=2)
        with pytest.raises(RuntimeError):
            enc.compute_embedding(np.array([0]), np.array([1.0]))

    def test_memory_updates_after_batches(self, tiny_stream, rng):
        enc = make_encoder("tgn", tiny_stream.num_nodes, rng, memory_dim=8,
                           embed_dim=8, time_dim=4, edge_dim=4, n_neighbors=3)
        enc.attach(tiny_stream)
        enc.reset_memory()
        batches = list(chronological_batches(tiny_stream, 50, rng))
        for batch in batches[:2]:
            enc.compute_embedding(batch.src, batch.timestamps)
            enc.register_batch(batch)
            enc.end_batch()
        # Flush once more so the second batch's messages land in memory.
        enc.flush_messages()
        enc.end_batch()
        touched = np.unique(np.concatenate([
            np.concatenate([b.src, b.dst]) for b in batches[:2]]))
        norms = np.abs(enc.memory.state).sum(axis=1)
        assert (norms[touched] > 0).all()
        untouched = np.setdiff1d(np.arange(tiny_stream.num_nodes), touched)
        if len(untouched):
            assert (norms[untouched] == 0).all()

    def test_deferred_messages_give_updater_gradients(self, tiny_stream, rng):
        enc = make_encoder("tgn", tiny_stream.num_nodes, rng, memory_dim=8,
                           embed_dim=8, time_dim=4, edge_dim=4, n_neighbors=3)
        enc.attach(tiny_stream)
        enc.reset_memory()
        batches = list(chronological_batches(tiny_stream, 50, rng))
        # Batch 0: no pending messages yet, updater unused.
        enc.compute_embedding(batches[0].src, batches[0].timestamps)
        enc.register_batch(batches[0])
        enc.end_batch()
        # Batch 1: pending messages flush inside this graph.
        z = enc.compute_embedding(batches[1].src, batches[1].timestamps)
        (z ** 2.0).sum().backward()
        gru = enc.updater.cell
        assert gru.w_xz.grad is not None
        assert np.abs(gru.w_xz.grad).sum() > 0

    def test_memory_snapshot_roundtrip(self, tiny_stream, rng):
        enc = make_encoder("jodie", tiny_stream.num_nodes, rng, memory_dim=8,
                           embed_dim=8, time_dim=4, edge_dim=4, n_neighbors=3)
        enc.attach(tiny_stream)
        for batch in chronological_batches(tiny_stream, 60, rng):
            enc.flush_messages()
            enc.register_batch(batch)
            enc.end_batch()
        enc.flush_messages()
        enc.end_batch()
        state, last_update = enc.memory_snapshot()
        enc.reset_memory()
        assert enc.memory.state.sum() == 0.0
        enc.load_memory(state, last_update)
        np.testing.assert_allclose(enc.memory.state, state)
        np.testing.assert_allclose(enc.memory.last_update, last_update)

    def test_jodie_projection_uses_elapsed_time(self, tiny_stream, rng):
        enc = make_encoder("jodie", tiny_stream.num_nodes, rng, memory_dim=8,
                           embed_dim=8, time_dim=4, edge_dim=4, n_neighbors=3)
        # Non-zero projection weights so elapsed time matters.
        enc.embedding_module.time_weight.data = np.full(8, 0.5)
        enc.attach(tiny_stream)
        for batch in chronological_batches(tiny_stream, 100, rng):
            enc.flush_messages()
            enc.register_batch(batch)
            enc.end_batch()
        enc.flush_messages()
        enc.end_batch()
        node = int(tiny_stream.src[0])
        z_soon = enc.compute_embedding(np.array([node]),
                                       np.array([tiny_stream.t_max + 1.0]))
        enc._flushed = None
        z_late = enc.compute_embedding(np.array([node]),
                                       np.array([tiny_stream.t_max + 50.0]))
        assert np.abs(z_soon.data - z_late.data).max() > 1e-8

    def test_state_dict_covers_all_components(self, rng):
        enc = make_encoder("tgn", 20, rng, memory_dim=8, embed_dim=8,
                           time_dim=4, edge_dim=4, n_neighbors=3)
        names = set(enc.state_dict())
        assert any("time_encoder" in n for n in names)
        assert any("updater" in n for n in names)
        assert any("embedding_module" in n for n in names)

    def test_table3_component_wiring(self, rng):
        """Paper Table III: each backbone uses its published components."""
        from repro.dgnn.embedding import (IdentityEmbedding,
                                          TemporalAttentionEmbedding,
                                          TimeProjectionEmbedding)
        jodie = make_encoder("jodie", 10, rng)
        dyrep = make_encoder("dyrep", 10, rng)
        tgn = make_encoder("tgn", 10, rng)
        assert isinstance(jodie.embedding_module, TimeProjectionEmbedding)
        assert isinstance(jodie.updater, RNNUpdater)
        assert isinstance(dyrep.embedding_module, IdentityEmbedding)
        assert isinstance(dyrep.message_fn, AttentionMessage)
        assert isinstance(tgn.embedding_module, TemporalAttentionEmbedding)
        assert isinstance(tgn.updater, GRUUpdater)
        assert isinstance(tgn.message_fn, IdentityMessage)
