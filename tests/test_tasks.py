"""Unit and integration tests for metrics, early stopping and downstream tasks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CPDGConfig, CPDGPreTrainer
from repro.datasets import split_downstream
from repro.tasks import (EarlyStopper, FineTuneConfig, FineTuneStrategy,
                         LinkPredictionTask, NodeClassificationTask,
                         STRATEGIES, accuracy_score, average_precision_score,
                         build_finetuned_encoder, roc_auc_score)


class TestMetrics:
    def test_auc_perfect_ranking(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc_score(labels, scores) == 1.0

    def test_auc_inverted_ranking(self):
        labels = np.array([1, 1, 0, 0])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc_score(labels, scores) == 0.0

    def test_auc_random_is_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=4000)
        scores = rng.random(4000)
        assert abs(roc_auc_score(labels, scores) - 0.5) < 0.03

    def test_auc_handles_ties(self):
        labels = np.array([0, 1, 0, 1])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        assert roc_auc_score(labels, scores) == pytest.approx(0.5)

    def test_auc_requires_both_classes(self):
        with pytest.raises(ValueError):
            roc_auc_score(np.ones(4), np.ones(4))

    def test_auc_mismatched_shapes(self):
        with pytest.raises(ValueError):
            roc_auc_score(np.ones(3), np.ones(4))

    def test_ap_perfect(self):
        labels = np.array([1, 1, 0, 0])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert average_precision_score(labels, scores) == 1.0

    def test_ap_known_value(self):
        # Ranked: pos, neg, pos -> AP = (1/1 + 2/3) / 2 = 5/6.
        labels = np.array([1, 0, 1])
        scores = np.array([0.9, 0.8, 0.7])
        assert average_precision_score(labels, scores) == pytest.approx(5 / 6)

    def test_ap_needs_positive(self):
        with pytest.raises(ValueError):
            average_precision_score(np.zeros(4), np.ones(4))

    def test_accuracy_threshold(self):
        labels = np.array([0, 1, 1])
        scores = np.array([0.3, 0.6, 0.4])
        assert accuracy_score(labels, scores) == pytest.approx(2 / 3)

    def test_auc_agrees_with_bruteforce_pair_count(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 2, size=60)
        labels[:3] = [0, 1, 0]
        scores = rng.random(60)
        pos = scores[labels == 1]
        neg = scores[labels == 0]
        wins = sum((p > n) + 0.5 * (p == n) for p in pos for n in neg)
        expected = wins / (len(pos) * len(neg))
        assert roc_auc_score(labels, scores) == pytest.approx(expected)


class TestEarlyStopper:
    def test_stops_after_patience(self):
        stopper = EarlyStopper(patience=2)
        assert not stopper.update(0.8)
        assert not stopper.update(0.7)
        assert stopper.update(0.6)

    def test_improvement_resets(self):
        stopper = EarlyStopper(patience=2)
        stopper.update(0.5)
        stopper.update(0.4)
        assert not stopper.update(0.9)
        assert stopper.best_round == 2

    def test_lower_is_better_mode(self):
        stopper = EarlyStopper(patience=1, higher_is_better=False)
        stopper.update(1.0)
        assert not stopper.update(0.5)
        assert stopper.update(0.6)

    def test_min_delta_counts_as_no_improvement(self):
        stopper = EarlyStopper(patience=1, min_delta=0.1)
        stopper.update(0.5)
        assert stopper.update(0.55)

    def test_invalid_patience(self):
        with pytest.raises(ValueError):
            EarlyStopper(patience=0)


def tiny_cfg():
    return CPDGConfig(eta=3, epsilon=3, depth=1, epochs=1, batch_size=64,
                      memory_dim=8, embed_dim=8, time_dim=4, n_neighbors=3,
                      num_checkpoints=3, seed=0)


def tiny_ft():
    return FineTuneConfig(epochs=2, batch_size=64, patience=1, eie_out_dim=4,
                          seed=0)


class TestBuildFinetunedEncoder:
    def test_none_strategy_fresh_encoder(self, tiny_stream):
        strat = build_finetuned_encoder("tgn", tiny_stream.num_nodes,
                                        tiny_cfg(), None, "none", tiny_ft())
        assert strat.eie is None
        assert strat.encoder.memory.state.sum() == 0.0
        assert strat.head_input_dim == 8

    def test_full_strategy_loads_pretrained(self, tiny_stream):
        result = CPDGPreTrainer.from_backbone(
            "tgn", tiny_stream.num_nodes, tiny_cfg()).pretrain(tiny_stream)
        strat = build_finetuned_encoder("tgn", tiny_stream.num_nodes,
                                        tiny_cfg(), result, "full", tiny_ft())
        np.testing.assert_allclose(strat.encoder.memory.state,
                                   result.memory_state)
        state = strat.encoder.state_dict()
        for key in state:
            np.testing.assert_allclose(state[key], result.encoder_state[key])

    def test_eie_strategy_head_dim(self, tiny_stream):
        result = CPDGPreTrainer.from_backbone(
            "tgn", tiny_stream.num_nodes, tiny_cfg()).pretrain(tiny_stream)
        strat = build_finetuned_encoder("tgn", tiny_stream.num_nodes,
                                        tiny_cfg(), result, "eie-gru",
                                        tiny_ft())
        assert strat.eie is not None
        assert strat.head_input_dim == 8 + 4

    def test_none_with_pretrain_rejected(self, tiny_stream):
        result = CPDGPreTrainer.from_backbone(
            "tgn", tiny_stream.num_nodes, tiny_cfg()).pretrain(tiny_stream)
        with pytest.raises(ValueError):
            build_finetuned_encoder("tgn", tiny_stream.num_nodes, tiny_cfg(),
                                    result, "none", tiny_ft())

    def test_full_without_pretrain_rejected(self, tiny_stream):
        with pytest.raises(ValueError):
            build_finetuned_encoder("tgn", tiny_stream.num_nodes, tiny_cfg(),
                                    None, "full", tiny_ft())

    def test_unknown_strategy(self, tiny_stream):
        with pytest.raises(ValueError):
            build_finetuned_encoder("tgn", tiny_stream.num_nodes, tiny_cfg(),
                                    None, "lora", tiny_ft())


class TestLinkPredictionTask:
    def test_full_run_produces_metrics(self, tiny_stream):
        split = split_downstream(tiny_stream)
        strat = build_finetuned_encoder("tgn", tiny_stream.num_nodes,
                                        tiny_cfg(), None, "none", tiny_ft())
        metrics = LinkPredictionTask(strat, split, tiny_ft()).run()
        assert 0.0 <= metrics.auc <= 1.0
        assert 0.0 <= metrics.ap <= 1.0
        assert metrics.num_events == split.test.num_events

    def test_training_history_records_epochs(self, tiny_stream):
        split = split_downstream(tiny_stream)
        strat = build_finetuned_encoder("jodie", tiny_stream.num_nodes,
                                        tiny_cfg(), None, "none", tiny_ft())
        task = LinkPredictionTask(strat, split, tiny_ft())
        history = task.train()
        assert 1 <= len(history) <= 2
        assert {"epoch", "loss", "val_auc", "val_ap"} <= set(history[0])

    def test_inductive_restricts_to_unseen(self, tiny_stream):
        split = split_downstream(tiny_stream)
        strat = build_finetuned_encoder("tgn", tiny_stream.num_nodes,
                                        tiny_cfg(), None, "none", tiny_ft())
        task = LinkPredictionTask(strat, split, tiny_ft())
        task.train()
        inductive = task.evaluate(inductive=True)
        transductive = task.evaluate(inductive=False)
        assert inductive.num_events <= transductive.num_events

    def test_eie_strategy_runs(self, tiny_stream):
        result = CPDGPreTrainer.from_backbone(
            "tgn", tiny_stream.num_nodes, tiny_cfg()).pretrain(tiny_stream)
        strat = build_finetuned_encoder("tgn", tiny_stream.num_nodes,
                                        tiny_cfg(), result, "eie-mean",
                                        tiny_ft())
        metrics = LinkPredictionTask(strat, split_downstream(tiny_stream),
                                     tiny_ft()).run()
        assert np.isfinite(metrics.auc)

    def test_compiled_finetune_is_bit_identical(self, tiny_stream):
        """finetune.compile_step=False reproduces the default exactly."""
        split = split_downstream(tiny_stream)

        def run(compile_step):
            import dataclasses
            ft = dataclasses.replace(tiny_ft(), compile_step=compile_step)
            strat = build_finetuned_encoder("tgn", tiny_stream.num_nodes,
                                            tiny_cfg(), None, "none", ft)
            task = LinkPredictionTask(strat, split, ft)
            history = task.train()
            return history, task.evaluate(), strat.encoder.state_dict()

        hist_c, metrics_c, state_c = run(True)
        hist_e, metrics_e, state_e = run(False)
        assert [h["loss"] for h in hist_c] == [h["loss"] for h in hist_e]
        assert (metrics_c.auc, metrics_c.ap) == (metrics_e.auc, metrics_e.ap)
        for key in state_e:
            assert np.array_equal(state_c[key], state_e[key]), key

    def test_learns_better_than_random(self, tiny_stream):
        """With enough epochs the task should clearly beat AUC 0.5."""
        ft = FineTuneConfig(epochs=5, batch_size=64, patience=3, seed=0)
        split = split_downstream(tiny_stream)
        strat = build_finetuned_encoder("tgn", tiny_stream.num_nodes,
                                        tiny_cfg(), None, "none", ft)
        metrics = LinkPredictionTask(strat, split, ft).run()
        assert metrics.auc > 0.55


class TestNodeClassificationTask:
    def test_requires_labels(self, tiny_stream):
        split = split_downstream(tiny_stream)  # unlabeled
        strat = build_finetuned_encoder("tgn", tiny_stream.num_nodes,
                                        tiny_cfg(), None, "none", tiny_ft())
        with pytest.raises(ValueError):
            NodeClassificationTask(strat, split, tiny_ft())

    def test_full_run(self, tiny_labeled_stream):
        split = split_downstream(tiny_labeled_stream)
        strat = build_finetuned_encoder("tgn", tiny_labeled_stream.num_nodes,
                                        tiny_cfg(), None, "none", tiny_ft())
        metrics = NodeClassificationTask(strat, split, tiny_ft()).run()
        assert np.isnan(metrics.auc) or 0.0 <= metrics.auc <= 1.0
        assert metrics.num_events == split.test.num_events
        assert 0.0 <= metrics.positive_rate <= 1.0

    def test_learns_labels_above_chance(self, tiny_labeled_stream):
        # Needs a little more capacity than the other smoke tests: the
        # dynamic label depends on recent-history patterns.
        cfg = CPDGConfig(eta=3, epsilon=3, depth=1, epochs=1, batch_size=64,
                         memory_dim=16, embed_dim=16, time_dim=4,
                         n_neighbors=5, num_checkpoints=3, seed=0)
        ft = FineTuneConfig(epochs=8, batch_size=64, patience=5, seed=0)
        split = split_downstream(tiny_labeled_stream)
        strat = build_finetuned_encoder("tgn", tiny_labeled_stream.num_nodes,
                                        cfg, None, "none", ft)
        metrics = NodeClassificationTask(strat, split, ft).run()
        if np.isfinite(metrics.auc):
            assert metrics.auc > 0.55
